"""Message tracing: record and render protocol traffic.

Debugging a coherence protocol is archaeology over message interleavings;
this module makes the dig pleasant.  A :class:`MessageTracer` subscribes to
a cluster's observability bus (``repro.obs``) and records every ``msg.send``
event with its timestamp, endpoints, kind and size.  Afterwards it renders

* a textual **message-sequence chart** (one column per node, time flowing
  down) — the format protocol papers draw by hand, and
* per-kind / per-link **summaries** for traffic analysis.

Because the records come off the same bus events that drive the stats
counters, ``len(records) == stats.total_messages`` holds exactly — including
COMBINED frames, which the old ``Network.send`` monkey-patch never saw.

Example::

    cl = Cluster(cfg, mem)
    tracer = MessageTracer(cl, kinds={MsgKind.READ_REQ, MsgKind.READ_RESP})
    cl.run(programs)
    print(tracer.sequence_chart())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.tempest.stats import MsgKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster -> obs)
    from repro.obs import Event, EventBus
    from repro.tempest.cluster import Cluster

__all__ = ["MessageRecord", "MessageTracer"]


@dataclass(frozen=True)
class MessageRecord:
    """One message send event."""

    t_ns: int
    src: int
    dst: int
    kind: MsgKind
    size_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.t_ns / 1000:10.1f}us  n{self.src} -> n{self.dst}  "
            f"{self.kind.value} ({self.size_bytes}B)"
        )


class MessageTracer:
    """Records a cluster's message traffic (install before running).

    Construct with a :class:`Cluster` (attaches to / creates its bus), or
    with :meth:`on_bus` when the bus is shared with other subscribers and
    the cluster does not exist yet.
    """

    def __init__(
        self,
        cluster: "Cluster | None" = None,
        kinds: Iterable[MsgKind] | None = None,
        max_records: int = 100_000,
        bus: "EventBus | None" = None,
        n_nodes: int | None = None,
    ) -> None:
        if bus is None:
            if cluster is None:
                raise ValueError("need a cluster or a bus to trace")
            bus = cluster.ensure_bus()
        if n_nodes is None:
            n_nodes = cluster.n_nodes if cluster is not None else 0
        self.bus = bus
        self.n_nodes = n_nodes
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.max_records = max_records
        self.records: list[MessageRecord] = []
        self.dropped = 0
        self._sub = bus.subscribe(self._on_event, kinds=frozenset({"msg.send"}))

    @classmethod
    def on_bus(
        cls,
        bus: "EventBus",
        n_nodes: int,
        kinds: Iterable[MsgKind] | None = None,
        max_records: int = 100_000,
    ) -> "MessageTracer":
        """Subscribe to an existing bus (cluster built later / elsewhere)."""
        return cls(kinds=kinds, max_records=max_records, bus=bus, n_nodes=n_nodes)

    # ------------------------------------------------------------------ #
    def _on_event(self, ev: "Event") -> None:
        args = ev.args
        kind = args["msg"]
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.records) < self.max_records:
            self.records.append(
                MessageRecord(ev.t_ns, args["src"], args["dst"], kind, args["size"])
            )
        else:
            self.dropped += 1

    def uninstall(self) -> None:
        """Stop recording (unsubscribe from the bus)."""
        self.bus.unsubscribe(self._sub)

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def by_kind(self) -> Counter:
        return Counter(r.kind for r in self.records)

    def by_link(self) -> Counter:
        return Counter((r.src, r.dst) for r in self.records)

    def bytes_total(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def between(self, t0_ns: int, t1_ns: int) -> list[MessageRecord]:
        return [r for r in self.records if t0_ns <= r.t_ns < t1_ns]

    def involving(self, node: int) -> list[MessageRecord]:
        return [r for r in self.records if node in (r.src, r.dst)]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def sequence_chart(self, max_rows: int = 60, col_width: int = 14) -> str:
        """Render a text message-sequence chart (columns = nodes).

        Each row is one send: the message label sits in the source node's
        column with an arrow toward the destination.
        """
        n = self.n_nodes or (
            max((max(r.src, r.dst) for r in self.records), default=0) + 1
        )
        header = "time (us)".ljust(12) + "".join(
            f"n{i}".center(col_width) for i in range(n)
        )
        lines = [header, "-" * len(header)]
        for r in self.records[:max_rows]:
            cells = [" " * col_width] * n
            label = r.kind.value[: col_width - 2]
            if r.src == r.dst:
                cells[r.src] = f"({label})".center(col_width)
            else:
                arrow = ">" if r.dst > r.src else "<"
                cells[r.src] = f"{label}{arrow}".rjust(col_width) if r.dst > r.src else f"{arrow}{label}".ljust(col_width)
                lo, hi = sorted((r.src, r.dst))
                for mid in range(lo + 1, hi):
                    cells[mid] = ("-" * (col_width - 2)).center(col_width)
            lines.append(f"{r.t_ns / 1000:<12.1f}" + "".join(cells))
        if len(self.records) > max_rows:
            lines.append(f"... {len(self.records) - max_rows} more messages")
        if self.dropped:
            lines.append(f"... {self.dropped} messages dropped (max_records)")
        return "\n".join(lines)

    def summary(self) -> str:
        kinds = ", ".join(f"{k.value}:{c}" for k, c in self.by_kind().most_common())
        return (
            f"{len(self.records)} messages, {self.bytes_total()} bytes "
            f"[{kinds}]"
        )
