"""End-of-run coherence auditor: prove, don't assume, that coherence held.

After a run (or at any global synchronization point where the protocol is
quiescent) the directory, the per-node access tags and the block version
tracker must tell one mutually consistent story.  The auditor cross-checks
all three and raises a structured :class:`CoherenceAuditError` listing every
violated invariant — so a faulty network, a protocol bug or a broken
compiler schedule is caught as a named invariant violation rather than as
silently wrong numbers.

Invariants
----------
For every block ``b`` (home ``h``, directory state ``s``):

* ``EXCLUSIVE``: the owner is a valid node, the sharer set is empty, the
  owner's tag is ReadWrite and its copy is version-current.
* ``SHARED``: the sharer set is non-empty, no owner is recorded, and every
  sharer that still holds a readable tag is version-current.  (A sharer
  whose tag was dropped locally — e.g. by ``implicit_invalidate`` — is
  safe: its next access faults and refetches; the directory merely sends
  one useless invalidation later.)
* ``IDLE``: no owner, no sharers, and the home's own memory is readable
  and version-current.
* Universally: a node holding a readable tag is either *directory-known*
  for that block (the exclusive owner, a listed sharer, or the home while
  the block is not exclusive elsewhere) or the tag is *implicit* —
  granted by a compiler-control primitive and tracked as such by
  :class:`~repro.tempest.access.AccessControl`.  An unexplained readable
  tag means some node could read data the protocol no longer guarantees.
* Universally: every directory-known readable copy is version-current —
  "no stale version survived".  Implicit copies are exempt here (their
  freshness is the compiler's contract, enforced separately by the
  contract checker and the per-read validators, and e.g. run-time
  overhead elimination legally retains them beyond their last use).

These are exactly the invariants the protocol fuzzer asserts inline; the
auditor packages them as a reusable pass so every integration test — and
every faulty-network run — ends with a proof of coherence.

Degraded runs
-------------
A run that survives a network partition (see
:class:`~repro.tempest.faults.PartitionScenario`) finishes with some nodes
torn mid-transaction.  ``skip_nodes`` masks those nodes out of the scan:
their own tag rows are ignored, and so is every block they home or
exclusively own (state for such a block is unknowable from the surviving
side).  :func:`audit_violations` is the non-raising variant — it returns
the violation list so a degraded run can *report* residual inconsistency
among the survivors instead of raising mid-teardown.
"""

from __future__ import annotations

import numpy as np

from repro.tempest.access import AccessControl, AccessTag
from repro.tempest.directory import Directory, DirState

__all__ = ["CoherenceAuditError", "audit_coherence", "audit_violations"]

#: cap on individual violations detailed in one error message
_MAX_REPORTED = 12


class CoherenceAuditError(AssertionError):
    """The directory, tags and versions disagree — coherence was broken.

    ``violations`` holds every failed invariant as a human-readable string;
    the exception message shows the first few.
    """

    def __init__(self, violations: list[str], context: str = "") -> None:
        self.violations = violations
        self.context = context
        shown = violations[:_MAX_REPORTED]
        more = len(violations) - len(shown)
        head = f"coherence audit failed ({len(violations)} violations"
        head += f", {context})" if context else ")"
        body = "\n  - ".join([""] + shown)
        if more > 0:
            body += f"\n  ... and {more} more"
        super().__init__(head + body)


def audit_coherence(
    directory: Directory,
    access: AccessControl,
    context: str = "",
    sample_prob: float = 1.0,
    rng: np.random.Generator | None = None,
    skip_nodes: frozenset[int] = frozenset(),
) -> int:
    """Cross-check directory state, access tags and block versions.

    Returns the number of blocks checked; raises
    :class:`CoherenceAuditError` on any violation.  Cheap enough to run
    after every test: the common case is a handful of vectorized scans.

    ``sample_prob < 1`` audits a random subset of blocks (each kept
    independently with that probability) — the per-barrier mode for large
    clusters, where a full scan at every quiescent point would dominate
    wall-clock.  Violation messages always name *real* block ids, so a hit
    in a sampled audit is directly reproducible by a full one.  Pass a
    seeded ``numpy`` generator for replayable sampling.

    ``skip_nodes`` exempts unreachable nodes (and the blocks they home or
    exclusively own) from every invariant — the degraded-run mode.
    """
    violations, n_blocks = _scan(
        directory, access, sample_prob, rng, skip_nodes
    )
    if violations:
        raise CoherenceAuditError(violations, context)
    return n_blocks


def audit_violations(
    directory: Directory,
    access: AccessControl,
    sample_prob: float = 1.0,
    rng: np.random.Generator | None = None,
    skip_nodes: frozenset[int] = frozenset(),
) -> list[str]:
    """Like :func:`audit_coherence` but *collects* instead of raising.

    Used by degraded runs to report residual inconsistency among the
    surviving nodes without turning the failure report into a traceback.
    """
    violations, _ = _scan(directory, access, sample_prob, rng, skip_nodes)
    return violations


def _scan(
    directory: Directory,
    access: AccessControl,
    sample_prob: float,
    rng: np.random.Generator | None,
    skip_nodes: frozenset[int],
) -> tuple[list[str], int]:
    if not 0.0 < sample_prob <= 1.0:
        raise ValueError(f"sample_prob must be in (0, 1]; got {sample_prob}")
    n_nodes = directory.n_nodes
    # The directory keeps these as plain Python containers for the
    # protocol's scalar hot path; the auditor converts once per scan and
    # runs its invariants vectorized.
    state = np.frombuffer(bytes(directory.state), dtype=np.uint8)
    owner = np.asarray(directory.owner, dtype=np.int64)
    sharers = np.asarray([int(m) for m in directory.sharers], dtype=np.uint64)
    home = directory.home
    tags = access._tags
    implicit = access._implicit
    copy_version = directory.copy_version
    global_version = directory.global_version
    if sample_prob < 1.0:
        gen = rng if rng is not None else np.random.default_rng(0)
        sel = np.flatnonzero(gen.random(directory.n_blocks) < sample_prob)
        if sel.size == 0:
            return 0
        block_ids = sel
        state = state[sel]
        owner = owner[sel]
        sharers = sharers[sel]
        home = home[sel]
        tags = tags[:, sel]
        implicit = implicit[:, sel]
        copy_version = copy_version[:, sel]
        global_version = global_version[sel]
    else:
        block_ids = np.arange(directory.n_blocks)
    n_blocks = block_ids.size
    current = copy_version >= global_version[None, :]
    readable = tags >= int(AccessTag.READONLY)

    node_bit = (np.uint64(1) << np.arange(n_nodes, dtype=np.uint64))[:, None]
    is_sharer = (sharers[None, :] & node_bit) != 0
    is_owner = owner[None, :] == np.arange(n_nodes)[:, None]
    is_home = home[None, :] == np.arange(n_nodes)[:, None]

    excl = state == int(DirState.EXCLUSIVE)
    shared = state == int(DirState.SHARED)
    idle = state == int(DirState.IDLE)

    # Unreachable-node masking (degraded runs): a skipped node's tag rows
    # are exempt, and so is every block it homes or exclusively owns — the
    # surviving side cannot know that block's true state.
    if skip_nodes:
        bad_ids = [n for n in skip_nodes if not 0 <= n < n_nodes]
        if bad_ids:
            raise ValueError(f"skip_nodes out of range: {sorted(bad_ids)}")
        live = np.ones(n_nodes, dtype=bool)
        live[sorted(skip_nodes)] = False
        block_live = live[home].copy()
        owned = np.flatnonzero(excl & (owner >= 0) & (owner < n_nodes))
        block_live[owned] &= live[owner[owned]]
    else:
        live = None
        block_live = None

    violations: list[str] = []

    def _report(mask: np.ndarray, fmt) -> None:
        """mask is (n_nodes, n_blocks) or (n_blocks,); fmt builds a line."""
        if block_live is not None:
            if mask.ndim == 2:
                mask = mask & live[:, None] & block_live[None, :]
            else:
                mask = mask & block_live
        bad = np.argwhere(mask)
        for entry in bad[: _MAX_REPORTED * 4]:
            violations.append(fmt(*entry.tolist()))
        if len(bad) > _MAX_REPORTED * 4:
            violations.append(f"... ({len(bad)} sites for this invariant)")

    # --- structural sanity -------------------------------------------- #
    _report(
        excl & ((owner < 0) | (owner >= n_nodes)),
        lambda b: f"block {block_ids[b]}: EXCLUSIVE with invalid owner {int(owner[b])}",
    )
    _report(
        excl & (sharers != 0),
        lambda b: f"block {block_ids[b]}: EXCLUSIVE but sharer bitmask 0x{int(sharers[b]):x}",
    )
    _report(
        shared & (sharers == 0),
        lambda b: f"block {block_ids[b]}: SHARED with empty sharer set",
    )
    _report(
        (shared | idle) & (owner != -1),
        lambda b: f"block {block_ids[b]}: non-exclusive state records owner {int(owner[b])}",
    )
    _report(
        idle & (sharers != 0),
        lambda b: f"block {block_ids[b]}: IDLE but sharer bitmask 0x{int(sharers[b]):x}",
    )

    # --- the exclusive owner really is the sole writer ----------------- #
    valid_owner = excl & (owner >= 0) & (owner < n_nodes)
    owner_rw = np.zeros_like(valid_owner)
    if valid_owner.any():
        idx = np.flatnonzero(valid_owner)
        owner_rw[idx] = tags[owner[idx], idx] == int(AccessTag.READWRITE)
        owner_cur = np.zeros_like(valid_owner)
        owner_cur[idx] = current[owner[idx], idx]
        _report(
            valid_owner & ~owner_rw,
            lambda b: (
                f"block {block_ids[b]}: exclusive owner {int(owner[b])} holds tag "
                f"{AccessTag(int(tags[owner[b], b])).name}, not READWRITE"
            ),
        )
        _report(
            valid_owner & owner_rw & ~owner_cur,
            lambda b: (
                f"block {block_ids[b]}: exclusive owner {int(owner[b])} is stale "
                f"(copy v{int(copy_version[owner[b], b])} < "
                f"global v{int(global_version[b])})"
            ),
        )

    # --- sharers really readable and current --------------------------- #
    _report(
        is_sharer & shared[None, :] & readable & ~current,
        lambda n, b: (
            f"block {block_ids[b]}: sharer {n} is stale "
            f"(copy v{int(copy_version[n, b])} < "
            f"global v{int(global_version[b])})"
        ),
    )

    # --- the home backs every non-exclusive block ----------------------- #
    home_tags = tags[home, np.arange(n_blocks)]
    home_cur = current[home, np.arange(n_blocks)]
    _report(
        idle & (home_tags < int(AccessTag.READONLY)),
        lambda b: (
            f"block {block_ids[b]}: IDLE but home {int(home[b])} tag is "
            f"{AccessTag(int(home_tags[b])).name}"
        ),
    )
    _report(
        idle & ~home_cur,
        lambda b: (
            f"block {block_ids[b]}: IDLE but home {int(home[b])} memory is stale "
            f"(copy v{int(copy_version[home[b], b])} < "
            f"global v{int(global_version[b])})"
        ),
    )

    # --- every readable tag is explained ------------------------------- #
    # Directory-known holders: the exclusive owner, listed sharers, or the
    # home itself while the block is not exclusive elsewhere.
    known = (is_owner & excl[None, :]) | is_sharer | (is_home & ~excl[None, :])
    _report(
        readable & ~known & ~implicit,
        lambda n, b: (
            f"block {block_ids[b]}: node {n} holds unexplained tag "
            f"{AccessTag(int(tags[n, b])).name} (state "
            f"{DirState(int(state[b])).name}, not a directory holder, "
            "not compiler-granted)"
        ),
    )

    # --- no stale directory-known copy survived ------------------------- #
    _report(
        readable & known & ~implicit & ~current
        & ~(is_home & idle[None, :])      # home-idle staleness reported above
        & ~(is_sharer & shared[None, :])  # sharer staleness reported above
        & ~(is_owner & excl[None, :]),    # owner staleness reported above
        lambda n, b: (
            f"block {block_ids[b]}: node {n} survived with stale readable copy "
            f"(copy v{int(copy_version[n, b])} < "
            f"global v{int(global_version[b])}, state "
            f"{DirState(int(state[b])).name})"
        ),
    )

    # --- the implicit bit itself stays consistent ----------------------- #
    _report(
        implicit & ~readable,
        lambda n, b: (
            f"block {block_ids[b]}: node {n} flagged compiler-controlled but tag is "
            f"{AccessTag(int(tags[n, b])).name}"
        ),
    )

    return violations, n_blocks
