"""Node fail-stop survival: crash injection, checkpoints, rollback-recovery.

Failure model
-------------
A :class:`~repro.tempest.faults.CrashScenario` fail-stops one node at an
absolute simulated instant: the node's program is cancelled, its queued
protocol handlers are invalidated (incarnation bump), and every frame to or
from it silently vanishes in the transport.  Peers hold **no oracle** — they
learn of the death the way a real cluster does, through silence: the
transport's per-channel keepalive probes (and any regular retransmit
traffic) exhaust ``max_retries`` and the channel gives up, which this
manager observes through the ``on_give_up`` hook and surfaces as a
``channel.dead`` event.

Checkpoints
-----------
Barrier completion is a globally consistent cut: every node has drained its
release fence and none has resumed, so there are no in-flight protocol
transactions to reason about.  Every ``checkpoint_every`` barriers the
manager snapshots the coherence state (access tags, directory arrays),
synchronization generation counters, and each node's trace-replay cursor.
The modeled write cost (segment bytes x ``checkpoint_cost_ns_per_kb``)
defers the barrier's release broadcast, so checkpointing visibly costs
simulated time; a zero cost keeps the schedule byte-identical.

Recovery
--------
Once the event heap drains with a detected crash outstanding, and every
dead node's scenario restarts, and a checkpoint exists, the cluster rolls
back: simulated time advances to the restart instant, the transport resets
(fresh channel epochs, cleared parked/ack state), the snapshot is restored,
surviving programs are cancelled, and fresh replay generators resume every
node from its checkpointed cursor.  The numerics are computed host-side
before the run, so a recovered run's final answers are byte-identical to a
crash-free run by construction — what recovery buys is *completion* (and
honest accounting of its cost under ``recovery_*`` stats) instead of the
degraded ``completed=False`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, TYPE_CHECKING

import numpy as np

from repro.sim import Future
from repro.tempest.faults import CrashScenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tempest.cluster import Cluster

__all__ = ["Checkpoint", "RecoveryManager"]

#: a program factory maps (node_id, resume_cursor) -> generator
ProgramFactory = Callable[[int, int], Generator[Any, Any, Any]]


@dataclass
class Checkpoint:
    """A barrier-consistent snapshot of everything rollback must restore.

    NumPy fields are defensive copies; nothing aliases live cluster state.
    The engine clock, statistics and RNG streams are deliberately *not*
    part of the cut — time only moves forward, stats keep accumulating
    across a rollback (re-execution is real work), and determinism comes
    from the replayed operation schedule, not from rewinding randomness.
    """

    barrier_gen: int                    #: barriers completed at the cut
    t_ns: int                           #: simulated instant of the cut
    nbytes: int                         #: modeled snapshot size
    cursors: list[int]                  #: per-node resume op index
    tags: np.ndarray
    implicit: np.ndarray
    dir_state: np.ndarray
    dir_owner: np.ndarray
    dir_sharers: np.ndarray
    dir_gver: np.ndarray
    dir_pver: np.ndarray
    dir_cver: np.ndarray
    coll_gen: list[int] = field(default_factory=list)
    reductions: int = 0
    arrival_counts: list[int] = field(default_factory=list)
    iw_memo: list[set] = field(default_factory=list)
    mp_counts: list[int] = field(default_factory=list)


class RecoveryManager:
    """Orchestrates crash injection, detection, checkpointing and rollback.

    Constructed by :meth:`Cluster.run` whenever the fault config carries
    crash scenarios or a checkpoint interval.  Holds no engine events of
    its own beyond the one-shot crash timers; detection is driven entirely
    by the transport's organic give-up machinery.
    """

    def __init__(self, cluster: "Cluster", program_factory: ProgramFactory | None) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.program_factory = program_factory
        self.faults = cluster.config.faults
        #: node_id -> CrashScenario for currently-dead nodes
        self._dead: dict[int, CrashScenario] = {}
        #: node_id -> mutable crash record (aliased into stats.crash_events)
        self._recs: dict[int, dict] = {}
        self._last_checkpoint: Checkpoint | None = None
        self._guards: list[Future] = []
        self._finished = 0
        self._rollbacks = 0
        #: set once a detected crash is recoverable; Cluster.run polls it
        #: each time the event heap drains.
        self.pending_recovery = False

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def install(self, guards: list[Future]) -> None:
        """Arm crash timers, hook detection + checkpointing, start probes."""
        cluster = self.cluster
        transport = cluster.network.transport
        for scen in self.faults.crashes:
            self.engine.call_at(scen.t_ns, self._crash, scen)
        if transport is not None:
            transport.on_give_up = self._on_give_up
        if self.faults.checkpoint_every > 0:
            cluster.barrier_net.on_checkpoint = self._on_barrier
        self.watch(guards)
        if transport is not None:
            transport.start_monitoring()

    def watch(self, guards: list[Future]) -> None:
        """Track a (re)spawned program set so probes stop at completion.

        Without this, live-live keepalives re-arm forever and the event
        heap never drains on a crash-free (or post-recovery) run.
        """
        self._guards = guards
        self._finished = 0
        for g in guards:
            g.add_callback(self._on_finish)

    def _on_finish(self, _value: Any) -> None:
        self._finished += 1
        if self._finished == self.cluster.n_nodes:
            transport = self.cluster.network.transport
            if transport is not None:
                transport.suspend_monitoring()

    # ------------------------------------------------------------------ #
    # crash injection
    # ------------------------------------------------------------------ #
    def _crash(self, scen: CrashScenario) -> None:
        node = self.cluster.nodes[scen.node]
        if not node.alive:  # pragma: no cover - config forbids duplicates
            return
        node.alive = False
        node.incarnation += 1
        node.pending.clear()
        transport = self.cluster.network.transport
        if transport is not None:
            transport.mark_dead(scen.node)
        if scen.node < len(self._guards):
            self._guards[scen.node].cancel()
        rec = {
            "node": scen.node,
            "t_ns": self.engine.now,
            "detected_t_ns": None,
            "restart_t_ns": None,
            "recovered": False,
        }
        self.cluster.stats.crash_events.append(rec)
        self._dead[scen.node] = scen
        self._recs[scen.node] = rec
        obs = self.cluster.obs
        if obs is not None:
            obs.emit(
                "crash.node", self.engine.now, 0, node=scen.node,
                restarts=scen.restarts,
            )

    # ------------------------------------------------------------------ #
    # detection (transport give-up hook)
    # ------------------------------------------------------------------ #
    def _on_give_up(self, src: int, dst: int) -> None:
        if dst not in self._dead:
            return  # an ordinary partition give-up; not ours
        rec = self._recs[dst]
        first_detection = rec["detected_t_ns"] is None
        if first_detection:
            rec["detected_t_ns"] = self.engine.now
            transport = self.cluster.network.transport
            if transport is not None:
                # One death proven is enough; stop probing so the heap can
                # drain.  Remaining survivor->dead channels still give up
                # organically off their own outstanding traffic.
                transport.suspend_monitoring()
        obs = self.cluster.obs
        if obs is not None:
            obs.emit(
                "channel.dead", self.engine.now, 0, src=src, dst=dst,
                first=first_detection,
            )
        if self._can_recover():
            self.pending_recovery = True

    def _can_recover(self) -> bool:
        """Recovery needs a checkpoint, a way to respawn programs, and
        *every* dead node to be restarting — rolling back while a
        never-restart node stays dead would re-crash forever."""
        return (
            self._last_checkpoint is not None
            and self.program_factory is not None
            and bool(self._dead)
            and all(s.restarts for s in self._dead.values())
        )

    def dead_nodes(self) -> list[int]:
        return sorted(self._dead)

    # ------------------------------------------------------------------ #
    # checkpointing (barrier all-arrived hook)
    # ------------------------------------------------------------------ #
    def _on_barrier(self, ordinal: int) -> int:
        """Snapshot at barrier ``ordinal``; return the modeled write cost."""
        if ordinal % self.faults.checkpoint_every != 0:
            return 0
        cluster = self.cluster
        cursors = cluster.replay_cursor
        if cursors is None:
            # Programs are not trace replays: there is nothing to resume
            # from, so checkpointing is a silent no-op (degraded contract
            # still applies on a crash).
            return 0
        access = cluster.access
        d = cluster.directory
        coll = cluster.collectives
        ext = cluster.ext
        nbytes = cluster.memory.checkpoint_bytes()
        ck = Checkpoint(
            barrier_gen=ordinal,
            t_ns=self.engine.now,
            nbytes=nbytes,
            # The barrier op is accounted complete by the restored
            # generation counters; resume at the op after it.
            cursors=[c + 1 for c in cursors],
            tags=access._tags.copy(),
            implicit=access._implicit.copy(),
            dir_state=d.state.copy(),
            dir_owner=d.owner.copy(),
            dir_sharers=d.sharers.copy(),
            dir_gver=d.global_version.copy(),
            dir_pver=d.prev_version.copy(),
            dir_cver=d.copy_version.copy(),
            coll_gen=list(coll._node_gen),
            reductions=coll.reductions_completed,
            arrival_counts=[s.count for s in ext.arrival_sema],
            iw_memo=[set(m) for m in ext._iw_memo],
            mp_counts=[s.count for s in coll._mp_sema],
        )
        self._last_checkpoint = ck
        stats = cluster.stats
        stats.recovery_checkpoints += 1
        stats.recovery_checkpoint_bytes += nbytes
        cost = nbytes * self.faults.checkpoint_cost_ns_per_kb // 1024
        obs = cluster.obs
        if obs is not None:
            obs.emit(
                "ckpt.write", self.engine.now, cost, gen=ordinal,
                nbytes=nbytes,
            )
        return cost

    # ------------------------------------------------------------------ #
    # rollback-recovery (called by Cluster.run at heap drain)
    # ------------------------------------------------------------------ #
    def perform_rollback(self) -> list[Future]:
        """Restore the last checkpoint and respawn every program.

        The event heap is empty when this runs (Cluster.run only calls it
        after ``engine.run()`` returns), so there are no stale timers,
        link jobs or handler completions to race against — restoring state
        wholesale is safe.  Returns the fresh program guards.
        """
        cluster = self.cluster
        ck = self._last_checkpoint
        assert ck is not None
        engine = self.engine
        stats = cluster.stats

        # Where each node had gotten to, for the observability record.
        reached = list(cluster.replay_cursor) if cluster.replay_cursor else []
        revived = sorted(self._dead)

        # Advance the clock to the instant every crashed node is back up.
        restart_t = engine.now
        for node_id, scen in self._dead.items():
            rec = self._recs[node_id]
            t = rec["t_ns"] + (scen.restart_delay_ns or 0)
            rec["restart_t_ns"] = t
            rec["recovered"] = True
            stats.recovery_ns += t - rec["t_ns"]
            restart_t = max(restart_t, t)
        engine.now = max(engine.now, restart_t)

        # Revive.  Incarnations stay bumped: any handler effect queued
        # before the crash stays invalidated forever.
        transport = cluster.network.transport
        for node_id in list(self._dead):
            cluster.nodes[node_id].alive = True
            if transport is not None:
                transport.mark_alive(node_id)

        # Transport epoch reset: all channels and ack buffers dropped,
        # fresh sequence spaces, monitoring restarted.
        if transport is not None:
            transport.reset()

        # Coherence state back to the cut.
        cluster.access._tags[:] = ck.tags
        cluster.access._implicit[:] = ck.implicit
        d = cluster.directory
        d.state[:] = ck.dir_state
        d.owner[:] = ck.dir_owner
        d.sharers[:] = ck.dir_sharers
        d.global_version[:] = ck.dir_gver
        d.prev_version[:] = ck.dir_pver
        d.copy_version[:] = ck.dir_cver

        # Synchronization services back to the cut.
        bar = cluster.barrier_net
        bar._node_gen = [ck.barrier_gen] * cluster.n_nodes
        bar.barriers_completed = ck.barrier_gen
        bar._arrivals.clear()
        bar._release.clear()
        coll = cluster.collectives
        coll._node_gen = list(ck.coll_gen)
        coll.reductions_completed = ck.reductions
        coll._arrivals.clear()
        coll._result.clear()
        coll._tree_semas.clear()
        for sema, count in zip(coll._mp_sema, ck.mp_counts):
            sema.count = count
            sema._waiter = None
            sema._threshold = None
        ext = cluster.ext
        for sema, count in zip(ext.arrival_sema, ck.arrival_counts):
            sema.count = count
            sema._waiter = None
            sema._threshold = None
        for memo, saved in zip(ext._iw_memo, ck.iw_memo):
            memo.clear()
            memo.update(saved)

        # In-progress transactions are orphaned with their generators.
        # Each one already bumped stats counters that will never see their
        # completion event; compensating miss.abort events keep the
        # event-derived counters exactly equal to ClusterStats.
        obs = cluster.obs
        if obs is not None:
            for (node_id, block), counted in sorted(
                cluster.protocol._inflight_counted.items()
            ):
                obs.emit(
                    "miss.abort", engine.now, node=node_id, block=block,
                    **counted,
                )
        cluster.protocol._busy.clear()
        cluster.protocol._inflight.clear()
        cluster.protocol._inflight_cause.clear()
        cluster.protocol._inflight_counted.clear()
        for node in cluster.nodes:
            node.pending.clear()
        net = cluster.network
        if getattr(net, "_pending", None) is not None:
            for per_dst in net._pending:
                per_dst.clear()
            for per_dst in net._last_ctl:
                per_dst.clear()

        # Cancel surviving programs (their state is pre-rollback) and
        # respawn everyone from the checkpointed cursors.
        for g in self._guards:
            if not g.resolved and not g.cancelled:
                g.cancel()
        cluster.replay_cursor = list(ck.cursors)
        factory = self.program_factory
        assert factory is not None
        guards = [
            engine.spawn(factory(n, ck.cursors[n]), label=f"node{n}")
            for n in range(cluster.n_nodes)
        ]
        self.watch(guards)

        self._rollbacks += 1
        stats.recovery_rollbacks += 1
        obs = cluster.obs
        if obs is not None:
            obs.emit(
                "recover.rollback", engine.now, 0, gen=ck.barrier_gen,
                resume=list(ck.cursors), reached=reached,
            )
            for node_id in revived:
                rec = self._recs[node_id]
                obs.emit(
                    "recover.resume", engine.now, 0, node=node_id,
                    restart_t_ns=rec["restart_t_ns"],
                )
        self._dead.clear()
        self.pending_recovery = False
        return guards
