"""The compiler-control primitives — the paper's Section 4.2 contract.

These are the run-time calls the modified ``pghpf`` emits around parallel
loops.  Each is a process fragment charged to the calling node, with its
elapsed time accounted as *protocol call time* (part of the optimized
versions' communication time, per the paper's Table 3 note).

The call sequence for a non-owner **read** section (Figure 2)::

    owner:  mk_writable(blocks)          # bring blocks writable at owner
            --- barrier ---
    reader: implicit_writable(blocks)    # tags only; directory NOT updated
            --- barrier ---
    owner:  send(blocks, reader)         # tagged data messages
    reader: ready_to_recv(n)             # counting semaphore
            ... parallel loop runs, zero faults on these blocks ...
    reader: implicit_invalidate(blocks)  # restore the directory's world view
            --- barrier ---

For a non-owner **write** section the roles flip and the writer ends with
``flush_and_invalidate`` — data returns to the owner so the directory's
belief (exclusive at owner) is true again.

Contract checks are *enforced at run time*: a data message arriving at a
node whose tag is not ReadWrite, or a send of a stale copy, raises
:class:`ContractViolation` — these catch planner bugs in tests rather than
silently computing garbage.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.sim import CountingSemaphore, Engine
from repro.tempest.access import AccessControl, AccessTag
from repro.tempest.config import ClusterConfig
from repro.tempest.directory import Directory
from repro.tempest.network import Network
from repro.tempest.node import Node
from repro.tempest.protocol import DefaultProtocol
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["CompilerExtensions", "ContractViolation"]

_READWRITE = int(AccessTag.READWRITE)


class ContractViolation(AssertionError):
    """The compiler broke its contract with the protocol."""


def coalesce_runs(blocks: Sequence[int], max_run: int) -> list[tuple[int, int]]:
    """Group sorted block ids into maximal consecutive runs of <= max_run.

    Returns ``(start_block, count)`` pairs — the unit of one data message.
    With ``max_run=1`` every block travels alone (the non-bulk baseline).
    """
    runs: list[tuple[int, int]] = []
    if not blocks:
        return runs
    start = prev = blocks[0]
    count = 1
    for b in blocks[1:]:
        if b == prev + 1 and count < max_run:
            prev = b
            count += 1
        else:
            if b <= prev:
                raise ValueError("blocks must be strictly increasing")
            runs.append((start, count))
            start = prev = b
            count = 1
    runs.append((start, count))
    return runs


class CompilerExtensions:
    """Protocol-bypass primitives exposed to compiled code."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        access: AccessControl,
        directory: Directory,
        network: Network,
        nodes: list[Node],
        protocol: DefaultProtocol,
        stats: ClusterStats,
    ) -> None:
        self.engine = engine
        self.config = config
        self.access = access
        self.directory = directory
        self.network = network
        self.nodes = nodes
        self.protocol = protocol
        self.stats = stats
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        self.arrival_sema = [
            CountingSemaphore(engine, f"recv.n{i}") for i in range(config.n_nodes)
        ]
        # rt-elim memoization: per node, ranges already made implicit_writable.
        self._iw_memo: list[set[tuple[int, int]]] = [set() for _ in range(config.n_nodes)]

    # ------------------------------------------------------------------ #
    def _timed(self, node_id: int, op: str = ""):
        """Context helper: measure a call's elapsed time into call_ns."""
        start = self.engine.now

        def finish() -> None:
            self.nodes[node_id].stats.call_ns += self.engine.now - start
            if self.obs is not None:
                self.obs.emit(
                    "call", start, self.engine.now - start,
                    node=node_id, op=op,
                )

        return finish

    # ------------------------------------------------------------------ #
    # sender-side preparation
    # ------------------------------------------------------------------ #
    def mk_writable(self, node_id: int, blocks: Sequence[int]) -> Generator[Any, Any, None]:
        """Bring ``blocks`` writable at ``node_id``, pipelined.

        "The protocol interprets this call as if a write fault is incurred
        for all the blocks in the specified range, except in a pipelined
        fashion."  Transactions are launched back-to-back and the call
        returns once all grants arrive; afterwards the directory records the
        caller as exclusive owner of every block — the property step 2 of
        the contract relies on.
        """
        finish = self._timed(node_id, "mk_writable")
        node = self.nodes[node_id]
        yield self.config.call_overhead_ns
        launched = []
        for b in blocks:
            if (
                self.access.get(node_id, b) is AccessTag.READWRITE
                and self.directory.owner_of(b) == node_id
            ):
                continue  # already exclusive here
            grant = yield from self.protocol.write_block(node_id, b, count_fault=False)
            launched.append(grant)
        for grant in launched:
            yield grant
        # The grants were also parked in the pending set; they are resolved
        # now, so clear them to keep release fences cheap.
        node.pending = [f for f in node.pending if not f.resolved]
        finish()

    # ------------------------------------------------------------------ #
    # receiver-side preparation
    # ------------------------------------------------------------------ #
    def implicit_writable(
        self,
        node_id: int,
        blocks: Sequence[int] | range,
        memo_key: tuple[int, int] | None = None,
    ) -> Generator[Any, Any, None]:
        """Set tags to ReadWrite *without* telling the directory.

        After this call the directory's view of these blocks is deliberately
        wrong (Figure 2C); the compiler promises to ``implicit_invalidate``
        them after the loop.  With ``memo_key`` (run-time overhead
        elimination, Section 4.3) repeat calls on the same range degrade to
        a *test*: "at subsequent times the call need only do the test and
        nothing more".  The test repairs any tags the default protocol
        revoked in between (e.g. a home copy inline-invalidated by a
        write-ownership transaction) — the paper's "extra work required for
        dealing with overlapping ranges".
        """
        finish = self._timed(node_id, "implicit_writable")
        block_list = blocks if isinstance(blocks, range) else list(blocks)
        if memo_key is not None and memo_key in self._iw_memo[node_id]:
            lost = [
                b for b in block_list
                if self.access.get(node_id, b) is not AccessTag.READWRITE
            ]
            if not lost:
                yield self.config.memoized_call_ns
                finish()
                return
            yield (
                self.config.memoized_call_ns
                + len(lost) * self.config.tag_change_per_block_ns
            )
            self.access.set_range(node_id, lost, AccessTag.READWRITE, implicit=True)
            finish()
            return
        n = len(block_list)
        yield self.config.call_overhead_ns + n * self.config.tag_change_per_block_ns
        self.access.set_range(node_id, block_list, AccessTag.READWRITE, implicit=True)
        if memo_key is not None:
            self._iw_memo[node_id].add(memo_key)
        finish()

    def ready_to_recv(self, node_id: int, n_blocks: int) -> Generator[Any, Any, None]:
        """Hold a counting semaphore until ``n_blocks`` have arrived."""
        finish = self._timed(node_id, "ready_to_recv")
        yield self.config.call_overhead_ns
        yield self.arrival_sema[node_id].wait_for(n_blocks)
        finish()

    # ------------------------------------------------------------------ #
    # the transfer itself
    # ------------------------------------------------------------------ #
    def send_blocks(
        self,
        node_id: int,
        blocks: Sequence[int],
        dst: int,
        bulk: bool = True,
    ) -> Generator[Any, Any, None]:
        """Ship ``blocks`` (sorted ids) to ``dst`` as tagged data messages.

        With ``bulk=True`` contiguous runs travel as one payload of up to
        ``max_payload_blocks`` blocks (the paper's bulk-transfer
        optimization); otherwise one message per block.
        """
        cfg = self.config
        finish = self._timed(node_id, "send_blocks")
        node = self.nodes[node_id]
        d = self.directory
        yield cfg.call_overhead_ns
        max_run = cfg.max_payload_blocks if bulk else 1
        copy_row = d.copy_version[node_id]
        global_v = d.global_version
        for start, count in coalesce_runs(list(blocks), max_run):
            run = range(start, start + count)
            stop = start + count
            # Vectorized staleness check over the contiguous run (one slice
            # compare instead of a per-block copy_is_current call).
            if not (copy_row[start:stop] >= global_v[start:stop]).all():
                for b in run:
                    if not d.copy_is_current(node_id, b):
                        raise ContractViolation(
                            f"node {node_id} sending stale copy of block {b} "
                            f"(copy v{int(d.copy_version[node_id, b])} < "
                            f"global v{int(d.global_version[b])})"
                        )
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            handler_cost = (
                cfg.handler_data_recv_ns
                + (count - 1) * cfg.handler_data_recv_per_block_ns
            )
            self.network.send(
                node_id,
                dst,
                MsgKind.DATA,
                lambda r=run, dn=dst: self._on_data(dn, r),
                handler_cost,
                payload_bytes=count * cfg.block_size,
            )
        finish()

    def _on_data(self, dst: int, run: range) -> None:
        """Receiver handler for a compiler-pushed payload."""
        tags = self.access.rows[dst][run.start : run.stop]
        if not (tags == _READWRITE).all():
            for b in run:
                if self.access.get(dst, b) is not AccessTag.READWRITE:
                    raise ContractViolation(
                        f"data for block {b} arrived at node {dst} whose tag is "
                        f"{self.access.get(dst, b).name}; implicit_writable "
                        "must precede the transfer (missing barrier?)"
                    )
        self.directory.deliver_copy(dst, run)
        self.arrival_sema[dst].post(len(run))

    # ------------------------------------------------------------------ #
    # post-loop consistency restoration
    # ------------------------------------------------------------------ #
    def implicit_invalidate(
        self, node_id: int, blocks: Sequence[int] | range
    ) -> Generator[Any, Any, None]:
        """Drop the receiver's copies so the directory is right again."""
        finish = self._timed(node_id, "implicit_invalidate")
        n = len(blocks)
        yield self.config.call_overhead_ns + n * self.config.tag_change_per_block_ns
        self.access.set_range(node_id, blocks if isinstance(blocks, range) else list(blocks), AccessTag.INVALID)
        finish()

    def flush_and_invalidate(
        self,
        node_id: int,
        blocks: Sequence[int],
        owner: int,
        bulk: bool = True,
    ) -> Generator[Any, Any, None]:
        """Non-owner-write epilogue: return dirty blocks to the owner and
        invalidate locally, so "the owner has the only latest (writable)
        copy and the directory correctly reflects this"."""
        cfg = self.config
        finish = self._timed(node_id, "flush_and_invalidate")
        node = self.nodes[node_id]
        yield cfg.call_overhead_ns
        max_run = cfg.max_payload_blocks if bulk else 1
        for start, count in coalesce_runs(list(blocks), max_run):
            run = range(start, start + count)
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            handler_cost = (
                cfg.handler_data_recv_ns
                + (count - 1) * cfg.handler_data_recv_per_block_ns
            )
            self.network.send(
                node_id,
                owner,
                MsgKind.FLUSH,
                lambda r=run, o=owner: self._on_flush(o, r),
                handler_cost,
                payload_bytes=count * cfg.block_size,
            )
        self.access.set_range(node_id, list(blocks), AccessTag.INVALID)
        finish()

    def _on_flush(self, owner: int, run: range) -> None:
        for b in run:
            if self.access.get(owner, b) is not AccessTag.READWRITE:
                raise ContractViolation(
                    f"flushed block {b} arrived at owner {owner} without "
                    "write permission; mk_writable must precede the loop"
                )
        self.directory.deliver_copy(owner, run)
        self.arrival_sema[owner].post(len(run))

    # ------------------------------------------------------------------ #
    # advisory primitives (paper Section 4.2: "These boundary cases could
    # also be optimized by advisory primitives, such as self-invalidate and
    # co-operative prefetch" — suggested there, built here)
    # ------------------------------------------------------------------ #
    def prefetch(self, node_id: int, blocks: Sequence[int]) -> Generator[Any, Any, None]:
        """Co-operative prefetch: launch read transactions for the invalid
        blocks among ``blocks`` and return without waiting.

        The transactions run through the *default* protocol (directory
        stays consistent — this is advisory, not compiler control).  A
        demand read that arrives while a prefetch is outstanding waits on
        it rather than re-issuing.
        """
        finish = self._timed(node_id, "prefetch")
        yield self.config.call_overhead_ns
        for b in blocks:
            if self.access.get(node_id, b) is AccessTag.INVALID:
                # Per-request issue cost charged inline; the transaction
                # itself completes asynchronously, overlapping what follows.
                yield self.config.send_overhead_ns
                self.protocol.start_prefetch(node_id, b)
        finish()

    def self_invalidate(self, node_id: int, blocks: Sequence[int]) -> Generator[Any, Any, None]:
        """Drop this node's read-only copies and notify the homes off the
        critical path, so future writers upgrade without an invalidation
        round trip (the advisory cousin of KSR's poststore family)."""
        cfg = self.config
        finish = self._timed(node_id, "self_invalidate")
        yield cfg.call_overhead_ns
        dropped_by_home: dict[int, list[int]] = {}
        for b in blocks:
            if self.access.get(node_id, b) is AccessTag.READONLY:
                self.access.set(node_id, b, AccessTag.INVALID)
                dropped_by_home.setdefault(self.directory.home_of(b), []).append(b)
        yield sum(len(v) for v in dropped_by_home.values()) * cfg.tag_change_per_block_ns
        for home, dropped in sorted(dropped_by_home.items()):
            if home == node_id:
                for b in dropped:
                    self.directory.clear_sharer(b, node_id)
                continue

            def on_notice(blks=tuple(dropped), n=node_id) -> None:
                for b in blks:
                    self.directory.clear_sharer(b, n)

            yield self.nodes[node_id].compute_cpu.use(cfg.send_overhead_ns)
            self.network.send(
                node_id,
                home,
                MsgKind.SELF_INV,
                on_notice,
                cfg.handler_ack_ns + len(dropped) * cfg.tag_change_per_block_ns,
                combinable=True,
            )
        finish()

    # ------------------------------------------------------------------ #
    def reset_memo(self) -> None:
        """Forget rt-elim memoization (between independent runs)."""
        for memo in self._iw_memo:
            memo.clear()
