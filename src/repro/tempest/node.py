"""A cluster node: compute processor, protocol processor, pending writes.

Dual-CPU configuration (the paper's default): protocol handlers execute on a
dedicated second HyperSPARC, so remote requests do not steal compute cycles.
Single-CPU configuration: the *same* FIFO resource serves both computation
and protocol handlers, and every handler additionally pays an interrupt
entry cost — this is what makes the single-CPU runs "somewhat slower" and
gives the optimizations proportionately more headroom (paper Section 6).

Release consistency: write faults are *eager* — the faulting store proceeds
immediately while the ownership transaction runs in the background.  The
node keeps the set of outstanding transactions and drains it at release
points (barriers), per "at synchronization points, a node waits for all
pending transactions to complete".
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim import Engine, Future, Resource
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import NodeStats

__all__ = ["Node"]


class Node:
    """State and processors of one cluster node."""

    __slots__ = (
        "node_id",
        "engine",
        "config",
        "stats",
        "compute_cpu",
        "protocol_cpu",
        "pending",
        "alive",
        "incarnation",
        "_handler_extra_ns",
    )

    def __init__(
        self, node_id: int, engine: Engine, config: ClusterConfig, stats: NodeStats
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.config = config
        self.stats = stats
        self.compute_cpu = Resource(engine, f"n{node_id}.cpu")
        if config.dual_cpu:
            self.protocol_cpu = Resource(engine, f"n{node_id}.pcpu")
        else:
            self.protocol_cpu = self.compute_cpu
        self.pending: list[Future] = []
        # Fail-stop state: a crashed node stops accepting handlers, and
        # the incarnation counter (bumped at each crash) invalidates every
        # handler effect already queued on its protocol CPU — a restarted
        # node never replays a pre-crash handler.
        self.alive = True
        self.incarnation = 0
        # Per-handler surcharge: the interrupt entry cost on a shared CPU.
        self._handler_extra_ns = 0 if config.dual_cpu else config.interrupt_overhead_ns

    # ------------------------------------------------------------------ #
    # protocol handler execution
    # ------------------------------------------------------------------ #
    def run_handler(self, cost_ns: int, fn: Callable[[], None]) -> None:
        """Execute a message handler: occupy the protocol CPU for its cost,
        then apply its effects.

        Effects apply at occupancy *completion* so that a handler's state
        changes are not visible while it is still queued behind earlier
        handlers — the FIFO resource gives us Tempest's one-handler-at-a-time
        semantics for free.
        """
        if not self.alive:
            return  # fail-stopped: the handler vanishes with the node
        cost = cost_ns + self._handler_extra_ns
        if self.engine.fused:
            # Fused: occupy the protocol CPU and apply the effects through
            # the same two-event chain as the classic serve/resolve/callback
            # path (completion event + same-instant hop), minus the Future,
            # the label f-string and the closure.  Identical (time, seq)
            # slots keep the global dispatch order byte-identical.
            finish = self.protocol_cpu.occupy_end(cost)
            self.engine.call_at(finish, self._handler_hop, fn, self.incarnation)
            return
        inc = self.incarnation
        self.protocol_cpu.serve(cost).add_callback(
            lambda _v: fn() if self.incarnation == inc else None
        )

    def _handler_hop(self, fn: Callable[[], None], inc: int) -> None:
        """Handler occupancy completed: hop to the effects (resolve mirror)."""
        self.engine.call_now(self._apply_handler, fn, inc)

    def _apply_handler(self, fn: Callable[[], None], inc: int) -> None:
        """Apply a handler's effects unless the node crashed since queueing."""
        if self.incarnation == inc:
            fn()

    # ------------------------------------------------------------------ #
    # compute-side process fragments
    # ------------------------------------------------------------------ #
    def compute(self, ns: int) -> Generator[Any, Any, None]:
        """Charge ``ns`` of computation to the compute CPU.

        Under the single-CPU configuration this naturally contends with
        protocol handlers through the shared FIFO resource.
        """
        if ns <= 0:
            return
        start = self.engine.now
        if self.config.dual_cpu:
            yield self.compute_cpu.use(ns)
        else:
            # Slice the computation so protocol handlers (which share this
            # CPU) interleave with bounded latency instead of waiting for
            # the whole computation to finish.
            quantum = self.config.compute_quantum_ns
            remaining = ns
            while remaining > 0:
                slice_ns = min(quantum, remaining)
                yield self.compute_cpu.use(slice_ns)
                remaining -= slice_ns
        self.stats.compute_ns += ns
        # Queueing behind protocol handlers shows up as stall, not compute.
        overrun = (self.engine.now - start) - ns
        if overrun > 0:
            self.stats.stall_ns += overrun

    def post_pending(self, fut: Future) -> None:
        """Register an outstanding (eager) write transaction."""
        self.pending.append(fut)

    def drain_pending(self) -> Generator[Any, Any, None]:
        """Release fence: wait for all outstanding write transactions."""
        start = self.engine.now
        pending, self.pending = self.pending, []
        for fut in pending:
            yield fut
        self.stats.stall_ns += self.engine.now - start

    def __repr__(self) -> str:  # pragma: no cover
        return f"Node({self.node_id}, pending={len(self.pending)})"
