"""Centralized message-based barrier with release-consistency fences.

Entering a barrier first drains the node's pending eager-write transactions
(the release fence: "at synchronization points, a node waits for all pending
transactions to complete"), then sends an arrival message to the manager
node.  Once all nodes have arrived, the manager broadcasts release messages.
All messages flow through the simulated network, so barrier cost reflects
real handler occupancy and contention — with 8 nodes a barrier costs on the
order of 2(N-1) short messages plus manager handler serialization, a few
hundred microseconds, in line with the platform the paper measures.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim import Engine, Future
from repro.tempest.config import ClusterConfig
from repro.tempest.network import Network
from repro.tempest.node import Node
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["Barrier"]


class Barrier:
    """Reusable cluster-wide barrier (generation counted per node)."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        network: Network,
        nodes: list[Node],
        stats: ClusterStats,
    ) -> None:
        self.engine = engine
        self.config = config
        self.network = network
        self.nodes = nodes
        self.stats = stats
        self.manager = config.barrier_manager
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        self._node_gen = [0] * config.n_nodes
        self._arrivals: dict[int, int] = {}
        self._release: dict[tuple[int, int], Future] = {}
        self.barriers_completed = 0
        # Lineage only (populated when a bus is attached): the seq of a
        # generation's last barrier.arrive event (parent of its
        # barrier.release), and the release msg.send seq per (gen, dst) so
        # each node's barrier span can name its own release delivery.
        self._arrive_seq: dict[int, int] = {}
        self._release_msg: dict[tuple[int, int], int] = {}
        # Invoked with the completed-barrier ordinal at the all-arrived
        # instant — every node has drained its release fence and none has
        # resumed, so the protocol is globally quiescent.  The cluster uses
        # it to run the coherence auditor per barrier.
        self.on_complete = None
        # Checkpoint hook, same instant, separate slot so the auditor and
        # the RecoveryManager compose.  Returns the modeled snapshot-write
        # cost in ns; a nonzero cost defers the release broadcast by that
        # long (every node pays the checkpoint together, preserving the
        # consistent cut).  None or a zero return keeps the schedule
        # byte-identical to a checkpoint-free run.
        self.on_checkpoint = None

    def enter(self, node_id: int) -> Generator[Any, Any, None]:
        """Process fragment: release fence, arrive, wait for release."""
        node = self.nodes[node_id]
        gen = self._node_gen[node_id]
        self._node_gen[node_id] += 1
        start = self.engine.now

        yield from node.drain_pending()
        fence_ns = self.engine.now - start
        # drain_pending charged the fence to stall; barrier accounting below
        # covers the remainder, so avoid double-counting.
        bar_start = self.engine.now

        release = self.engine.future(f"bar{gen}.n{node_id}")
        self._release[(gen, node_id)] = release

        # Arrival message: sender-side overhead on the compute CPU.
        yield node.compute_cpu.use(self.config.send_overhead_ns)
        if self.obs is None:
            self.network.send(
                node_id,
                self.manager,
                MsgKind.BARRIER_ARRIVE,
                lambda g=gen: self._on_arrival(g),
                self.config.handler_ack_ns,
                combinable=True,
            )
        else:
            # Lineage spelling of the same send: the handler learns who
            # arrived, when the arrival left, and which msg carried it
            # (the ref cell closes over the seq network.send returns).
            ref: list = [None]
            ref[0] = self.network.send(
                node_id,
                self.manager,
                MsgKind.BARRIER_ARRIVE,
                lambda g=gen, s=node_id, t=self.engine.now, r=ref:
                    self._on_arrival(g, s, t, r[0]),
                self.config.handler_ack_ns,
                combinable=True,
            )
        yield release
        del self._release[(gen, node_id)]
        node.stats.barrier_ns += self.engine.now - bar_start
        if self.obs is not None:
            # The span covers the whole barrier as the node experiences it:
            # release fence (drain) + arrival + wait for release.
            self.obs.emit(
                "barrier", start, self.engine.now - start, node=node_id,
                gen=gen, fence_ns=fence_ns,
                release_msg=self._release_msg.pop((gen, node_id), None),
            )

    # ------------------------------------------------------------------ #
    def _on_arrival(
        self, gen: int, src: int = -1, sent_ns: int = 0, cause=None
    ) -> None:
        count = self._arrivals.get(gen, 0) + 1
        last = count >= self.config.n_nodes
        if self.obs is not None:
            ev = self.obs.emit(
                "barrier.arrive", self.engine.now, node=self.manager,
                parent=cause, gen=gen, src=src, sent_ns=sent_ns,
                count=count, last=last,
            )
            if last:
                self._arrive_seq[gen] = ev.seq
        if not last:
            self._arrivals[gen] = count
            return
        self._arrivals.pop(gen, None)
        self.barriers_completed += 1
        if self.on_complete is not None:
            self.on_complete(self.barriers_completed)
        if self.on_checkpoint is not None:
            cost = self.on_checkpoint(self.barriers_completed)
            if cost:
                self.engine.call_after(cost, self._broadcast_release, gen)
                return
        self._broadcast_release(gen)

    def _broadcast_release(self, gen: int) -> None:
        if not self.nodes[self.manager].alive:
            return  # the manager fail-stopped inside the checkpoint window
        rel_seq = None
        if self.obs is not None:
            rel_seq = self.obs.emit(
                "barrier.release", self.engine.now, node=self.manager,
                parent=self._arrive_seq.pop(gen, None), gen=gen,
            ).seq
        for dst in range(self.config.n_nodes):
            seq = self.network.send(
                self.manager,
                dst,
                MsgKind.BARRIER_RELEASE,
                lambda g=gen, d=dst: self._on_release(g, d),
                self.config.handler_ack_ns,
                combinable=True,
                parent=rel_seq,
            )
            if self.obs is not None and seq is not None:
                self._release_msg[(gen, dst)] = seq

    def _on_release(self, gen: int, node_id: int) -> None:
        fut = self._release.get((gen, node_id))
        if fut is None:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"barrier release for ({gen}, {node_id}) with no waiter"
            )
        fut.resolve(None)
