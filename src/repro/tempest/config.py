"""Cluster configuration, calibrated against the paper's Table 1.

The paper's measured platform:

===================================================  =================
Processor                                            66 MHz HyperSPARC
Minimum roundtrip latency for short (4 B) message    40 us
Network bandwidth                                    20 MB/s
Read-miss processing time, 128 B block, dual CPU     93 us
===================================================  =================

All times in this model are integral nanoseconds.  The derived quantities
below are chosen so that the three calibration microbenchmarks
(``benchmarks/bench_table1_calibration.py``) land on the paper's numbers:

* short-message roundtrip  = 2 * (send_overhead + wire_latency + dispatch)
                          ~= 40 us
* clean read miss (home has the data, home != requester, dual CPU)
    send_overhead + wire + request handler + wire + data serialization
    + response handler  ~= 93 us
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.tempest.faults import FaultConfig

__all__ = ["ClusterConfig", "CombineConfig", "SwitchConfig", "US", "MS"]

US = 1_000  # nanoseconds per microsecond
MS = 1_000_000


@dataclass(frozen=True)
class CombineConfig:
    """Protocol message combining (the communication fast path).

    When enabled, header-only control frames (protocol invalidations and
    acknowledgements, barrier notifications, transport acks) are coalesced
    per (src, dst) channel into a single combined frame: one header on the
    wire, one receiver-side dispatch, the sub-handlers run back to back.
    This extends the paper's Section 4.2 bulk-transfer idea — pay
    per-message overheads once — from data payloads to control traffic.

    The first control frame on a cold channel transmits immediately — an
    isolated frame never pays combining latency — but heats the channel:
    followers within ``max_wait_ns`` (one short-message roundtrip by
    default), or frames finding the link busy, park in a per-channel
    combine buffer.  That is exactly the shape of the bursts the eager
    protocol emits — consecutive boundary-block invalidations, their acks,
    barrier fan-in.  A buffer flushes when it fills (``max_msgs``), when
    its oldest frame has waited ``max_wait_ns``, when the outgoing link
    goes idle after a busy spell, or when a non-combinable message to the
    same destination must not be overtaken.  Transport acks combine only
    opportunistically (when their link is busy serializing), keeping RTT
    samples tight.

    Disabled (the default) the combining machinery is bypassed entirely:
    schedules are byte-identical to a build without it, the same
    revocability discipline the fault layer follows.
    """

    enabled: bool = False
    #: most sub-messages folded into one combined frame
    max_msgs: int = 8
    #: wire bytes per sub-message inside a combined frame (a packed kind
    #: tag + block/seq operand; the 16-byte header is paid only once)
    slot_bytes: int = 4
    #: longest a parked control frame may wait for channel-mates before the
    #: buffer flushes on its own (bounds added latency; ~1 short-msg RTT)
    max_wait_ns: int = 40 * US

    def __post_init__(self) -> None:
        if self.max_msgs < 2:
            raise ValueError(f"max_msgs must be >= 2; got {self.max_msgs}")
        if self.slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1; got {self.slot_bytes}")
        if self.max_wait_ns <= 0:
            raise ValueError(f"max_wait_ns must be > 0; got {self.max_wait_ns}")


@dataclass(frozen=True)
class SwitchConfig:
    """Shared-switch contention model for the interconnect.

    The paper's cluster runs all traffic through one Myrinet switch, but
    the default network model is N independent FIFO links: frames to the
    same destination never queue behind each other.  Enabling this config
    routes every remote frame sender-link → switch output port → receiver:
    the one-way propagation splits in half around a store-and-forward hop
    on the destination's *output port*, a FIFO server forwarding at the
    switch's per-port rate.  Frames racing to one hot destination
    serialize on its port, and the port's backlog *backpressures* the
    sender — the sending link stays held until the port accepts the frame
    (Myrinet's blocking flow control), so upstream traffic, the adaptive
    RTO's RTT samples, and the combining layer's link-busy parking all
    feel the congestion.

    ``ports`` output ports serve destination ``dst % ports`` (``None`` =
    one port per node).  ``bandwidth_bytes_per_us`` caps the *aggregate*
    forwarding bandwidth, split evenly across ports; ``None`` gives every
    port the link rate, so an uncontended frame pays exactly one extra
    store-and-forward serialization and no artificial slowdown.

    Disabled (the default) none of the machinery is constructed and
    schedules are byte-identical to the link-only model — the same
    discipline the fault and combining layers follow.
    """

    enabled: bool = False
    #: output ports on the switch; destination ``dst % ports``.  ``None``
    #: resolves to the cluster's node count (a non-blocking port per node).
    ports: int | None = None
    #: aggregate forwarding bandwidth over all ports (bytes/us == MB/s);
    #: ``None`` = ``ports`` x the link bandwidth (per-port rate == link rate)
    bandwidth_bytes_per_us: float | None = None

    def __post_init__(self) -> None:
        if self.ports is not None and self.ports < 1:
            raise ValueError(f"ports must be >= 1; got {self.ports}")
        if (self.bandwidth_bytes_per_us is not None
                and self.bandwidth_bytes_per_us <= 0):
            raise ValueError(
                f"bandwidth_bytes_per_us must be > 0; "
                f"got {self.bandwidth_bytes_per_us}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """All tunables of the simulated cluster.

    The defaults reproduce the paper's platform; tests shrink block and page
    sizes to exercise corner cases cheaply.
    """

    n_nodes: int = 8
    block_size: int = 128           # bytes; "e.g. 32-128 bytes" -- paper uses 128
    page_size: int = 4096           # bytes; Tempest maps remote pages lazily

    # Dual-CPU configuration: protocol handlers run on a dedicated second
    # processor.  Single-CPU: handlers interrupt the compute processor.
    dual_cpu: bool = True

    # --- network -------------------------------------------------------- #
    wire_latency_ns: int = 10 * US          # one-way propagation + NI cost
    bandwidth_bytes_per_us: float = 20.0    # 20 MB/s == 20 bytes/us
    send_overhead_ns: int = 5 * US          # sender-side per-message CPU cost
    dispatch_overhead_ns: int = 4 * US      # receiver-side dispatch before handler

    # --- protocol handler occupancies ------------------------------------ #
    # Charged on the handling node's protocol CPU.
    handler_request_ns: int = 30 * US       # directory lookup + reply construction
    handler_response_ns: int = 19 * US      # install data, update tags
    handler_invalidate_ns: int = 6 * US     # invalidate a cached copy
    handler_ack_ns: int = 4 * US            # count an ack
    handler_data_recv_ns: int = 10 * US     # store an arriving compiler-pushed block
    handler_data_recv_per_block_ns: int = 2 * US  # extra per additional block in a payload

    # Single-CPU penalty: every handler execution on the shared CPU also
    # pays an interrupt/poll entry cost.
    interrupt_overhead_ns: int = 10 * US
    # Single-CPU only: computation is sliced into quanta so protocol
    # handlers can interleave (models interrupt-driven handling with
    # bounded dispatch latency).  Dual-CPU computations run unsliced.
    compute_quantum_ns: int = 100 * US

    # --- access-control fault costs -------------------------------------- #
    fault_detect_ns: int = 3 * US           # taking a fine-grain access fault

    # --- compiler-control primitive costs (Section 4.2) ------------------- #
    call_overhead_ns: int = 2 * US          # entering any run-time call
    tag_change_per_block_ns: int = 250      # flipping one block's access tag
    memoized_call_ns: int = 1 * US          # rt-elim fast path: test-only call
    max_payload_blocks: int = 16            # bulk transfer: blocks per message

    # --- message-passing backend (pghpf-MP comparator) ----------------- #
    # pghpf's runtime gathers/scatters array sections through pack buffers;
    # at 66 MHz this costs roughly a word every few cycles.  Charged on both
    # the sending and receiving compute CPU per payload byte.
    mp_pack_ns_per_byte: int = 25

    # --- compute model ---------------------------------------------------- #
    # 66 MHz HyperSPARC doing ~1 flop-equivalent per ~4 cycles on stencil
    # code => ~60 ns per element-update "work unit".  Applications report
    # work units per element; this converts them to time.
    compute_ns_per_unit: int = 60
    loop_overhead_ns: int = 2 * US          # per parallel-loop fixed cost

    # --- barrier / collectives --------------------------------------------- #
    barrier_manager: int = 0                # node that collects arrivals
    # 'central' (combine at root, broadcast) or 'tree' (binomial).
    reduce_algorithm: str = "central"

    # --- interconnect fault model ------------------------------------------ #
    # The default is a perfect wire (the paper's assumption); any nonzero
    # rate engages the reliable transport (see repro.tempest.transport).
    faults: FaultConfig = FaultConfig()

    # --- control-message combining ----------------------------------------- #
    # Off by default: schedules stay byte-identical to the uncombined
    # model.  Enabled, queued header-only control frames coalesce per
    # (src, dst) channel (see repro.tempest.network).
    combine: CombineConfig = CombineConfig()

    # --- shared-switch contention ------------------------------------------ #
    # Off by default: links stay independent and schedules byte-identical
    # to the link-only model.  Enabled, every remote frame routes through
    # a per-destination output port on a shared switch fabric (see
    # repro.tempest.network).
    switch: SwitchConfig = SwitchConfig()

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.block_size <= 0 or self.block_size % 8:
            raise ValueError("block_size must be a positive multiple of 8")
        if self.page_size % self.block_size:
            raise ValueError("page_size must be a multiple of block_size")
        if self.max_payload_blocks < 1:
            raise ValueError("max_payload_blocks must be >= 1")
        if self.reduce_algorithm not in ("central", "tree"):
            raise ValueError(f"unknown reduce_algorithm {self.reduce_algorithm!r}")

    # ------------------------------------------------------------------ #
    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def transfer_ns(self, size_bytes: int) -> int:
        """Serialization time for ``size_bytes`` on the wire."""
        return int(size_bytes / self.bandwidth_bytes_per_us * US)

    def message_latency_ns(self, size_bytes: int) -> int:
        """Wire time for a message: propagation plus serialization."""
        return self.wire_latency_ns + self.transfer_ns(size_bytes)

    @property
    def switch_ports(self) -> int:
        """Resolved output-port count of the switch fabric."""
        return self.switch.ports or self.n_nodes

    def switch_forward_ns(self, size_bytes: int) -> int:
        """Store-and-forward time for one frame on a switch output port.

        Ports split the aggregate bandwidth cap evenly; with no explicit
        cap every port forwards at the link rate.
        """
        agg = self.switch.bandwidth_bytes_per_us
        per_port = (
            agg / self.switch_ports if agg is not None
            else self.bandwidth_bytes_per_us
        )
        return int(size_bytes / per_port * US)

    def single_cpu(self) -> "ClusterConfig":
        return replace(self, dual_cpu=False)

    def with_nodes(self, n: int) -> "ClusterConfig":
        return replace(self, n_nodes=n)

    def scaled(self, **kwargs: object) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


# A small-footprint configuration used pervasively by the test-suite:
# 4 nodes, tiny blocks/pages so interesting boundary cases appear with
# arrays of a few dozen elements.
def small_config(**overrides: object) -> ClusterConfig:
    base = ClusterConfig(
        n_nodes=4,
        block_size=32,
        page_size=128,
    )
    if overrides:
        base = base.scaled(**overrides)
    return base
