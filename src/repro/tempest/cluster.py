"""The assembled cluster: the facade executors program against.

A :class:`Cluster` wires together one simulation engine, the shared segment
geometry, access control, directory, network, per-node CPUs, the default
protocol, the compiler-control extensions, barriers and collectives.  Node
programs are generator processes that call the fragment methods below with
``yield from``.

Typical shape of a node program::

    def program(node_id):
        yield from cluster.write_blocks(node_id, my_blocks, phase=1)
        yield from cluster.barrier(node_id)
        yield from cluster.read_blocks(node_id, neighbour_blocks)
        yield from cluster.compute(node_id, work_ns)
        yield from cluster.barrier(node_id)

    cluster.run({n: program(n) for n in range(cluster.n_nodes)})
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Mapping

import numpy as np

from repro.sim import Engine, SimulationError
from repro.tempest.access import AccessControl, AccessTag
from repro.tempest.audit import audit_coherence, audit_violations
from repro.tempest.barrier import Barrier
from repro.tempest.collectives import Collectives
from repro.tempest.config import ClusterConfig
from repro.tempest.directory import Directory
from repro.tempest.extensions import CompilerExtensions
from repro.tempest.memory import SharedMemory
from repro.tempest.network import Network
from repro.tempest.node import Node
from repro.tempest.protocol import DefaultProtocol
from repro.tempest.protocol_update import UpdateProtocol
from repro.tempest.stats import ClusterStats

__all__ = ["Cluster"]

_READONLY = int(AccessTag.READONLY)


class Cluster:
    """One simulated Tempest cluster over a finalized shared segment."""

    #: selectable default protocols (Tempest: the protocol is user code)
    PROTOCOLS = {"invalidate": DefaultProtocol, "update": UpdateProtocol}

    def __init__(
        self,
        config: ClusterConfig,
        memory: SharedMemory,
        protocol: str = "invalidate",
        obs=None,
    ) -> None:
        if memory.config is not config and memory.config != config:
            raise ValueError("memory was laid out under a different config")
        if protocol not in self.PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {sorted(self.PROTOCOLS)}"
            )
        self.protocol_name = protocol
        self.config = config
        self.memory = memory
        self.engine = Engine()
        self.stats = ClusterStats.for_nodes(config.n_nodes)
        self.nodes = [
            Node(i, self.engine, config, self.stats[i]) for i in range(config.n_nodes)
        ]
        self.network = Network(self.engine, config, self.stats, self.nodes)

        homes = np.repeat(
            np.asarray(memory._page_homes, dtype=np.int32), config.blocks_per_page
        )
        self.directory = Directory(config.n_nodes, memory.n_blocks, homes.tolist())
        self.access = AccessControl(config.n_nodes, memory.n_blocks)
        # Each home starts with the (only) writable copy of its blocks.
        for node in range(config.n_nodes):
            mine = np.flatnonzero(homes == node)
            self.access.set_range(node, mine.tolist(), AccessTag.READWRITE)

        self.protocol = self.PROTOCOLS[protocol](
            self.engine, config, self.access, self.directory, self.network, self.nodes, self.stats
        )
        self.ext = CompilerExtensions(
            self.engine,
            config,
            self.access,
            self.directory,
            self.network,
            self.nodes,
            self.protocol,
            self.stats,
        )
        self.barrier_net = Barrier(self.engine, config, self.network, self.nodes, self.stats)
        self.collectives = Collectives(self.engine, config, self.network, self.nodes, self.stats)
        #: the observability bus (repro.obs.EventBus) or None.  Publishing
        #: sites guard on their component's ``obs`` being non-None, so a
        #: cluster without a bus constructs no event objects at all.
        self.obs = None
        #: per-node trace-replay op cursor (set by repro.runtime.traces when
        #: programs are trace replays); checkpoints snapshot it and rollback
        #: resumes from it.  None for hand-written generator programs.
        self.replay_cursor: list[int] | None = None
        #: the RecoveryManager for runs with crash scenarios / checkpoints.
        self.recovery = None
        if obs is not None:
            self.attach_bus(obs)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def attach_bus(self, bus):
        """Point every publishing component at ``bus`` (an EventBus).

        Attaching a bus never perturbs the simulation: events are emitted
        synchronously at existing accounting sites and no engine events are
        scheduled, so schedules, stats and numerics stay byte-identical to
        a run without one.
        """
        self.obs = bus
        self.network.obs = bus
        if self.network.transport is not None:
            self.network.transport.obs = bus
        self.protocol.obs = bus
        self.ext.obs = bus
        self.barrier_net.obs = bus
        self.collectives.obs = bus
        return bus

    def ensure_bus(self):
        """Return the attached bus, creating and attaching one if absent."""
        if self.obs is None:
            from repro.obs import EventBus

            self.attach_bus(EventBus())
        return self.obs

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    # ------------------------------------------------------------------ #
    # process fragments
    # ------------------------------------------------------------------ #
    def compute(self, node_id: int, ns: int) -> Generator[Any, Any, None]:
        yield from self.nodes[node_id].compute(int(ns))

    def compute_units(self, node_id: int, units: float) -> Generator[Any, Any, None]:
        """Charge ``units`` of per-element work via the configured rate."""
        yield from self.nodes[node_id].compute(
            int(units * self.config.compute_ns_per_unit)
        )

    def read_blocks(
        self,
        node_id: int,
        blocks: Iterable[int],
        context: str = "",
        phase: int | None = None,
    ) -> Generator[Any, Any, None]:
        """Perform (first-touch) read accesses to ``blocks``.

        Hits are free (the fine-grain tag check is in the access-control
        hardware); each miss blocks the compute thread for a full protocol
        transaction.  All hit copies are validated against the version
        tracker — a stale hit means the protocol or the compiler's contract
        is broken, and raises immediately.  ``phase`` tolerates legal
        same-phase write/read overlap (see Directory.validate_reads_bulk).
        """
        arr = np.asarray(blocks, dtype=np.int64)
        if arr.size == 0:
            return
        # Vectorized hit/miss split on the tag table (hot path: stencil
        # loops touch thousands of blocks per phase, nearly all hits).
        tags = self.access.rows[node_id][arr]
        miss_mask = tags < _READONLY
        if not miss_mask.any():
            # All hits: validate the whole batch and fall straight through
            # (no index-array slicing, no stall accounting).
            self.directory.validate_reads_bulk(node_id, arr, context, phase)
            return
        hits = arr[~miss_mask]
        if hits.size:
            self.directory.validate_reads_bulk(node_id, hits, context, phase)
        missing = arr[miss_mask]
        start = self.engine.now
        for b in missing.tolist():
            yield from self.protocol.read_block(node_id, b)
        self.stats[node_id].stall_ns += self.engine.now - start

    def write_blocks(
        self, node_id: int, blocks: Iterable[int], phase: int
    ) -> Generator[Any, Any, None]:
        """Perform write accesses to ``blocks`` at logical time ``phase``.

        Faults are eager: each non-writable block costs the inline fault +
        request-send time, but the store proceeds; grants drain at the next
        release point.
        """
        arr = np.asarray(blocks, dtype=np.int64)
        if arr.size == 0:
            return
        yield from self.protocol.write_phase(node_id, arr, phase)

    def barrier(self, node_id: int) -> Generator[Any, Any, None]:
        yield from self.barrier_net.enter(node_id)

    def reduce(self, node_id: int, n_values: int = 1) -> Generator[Any, Any, None]:
        yield from self.collectives.reduce(node_id, n_values)

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def audit(
        self,
        context: str = "",
        sample_prob: float = 1.0,
        rng: "np.random.Generator | None" = None,
    ) -> int:
        """Cross-check directory, tags and versions; raise on violation.

        See :func:`repro.tempest.audit.audit_coherence` for the invariants.
        Returns the number of blocks checked.  ``sample_prob < 1`` audits a
        random block subset (cheap per-barrier mode for large clusters).
        """
        return audit_coherence(
            self.directory,
            self.access,
            context or f"protocol={self.protocol_name}",
            sample_prob=sample_prob,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # driving the simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        programs: Mapping[int, Generator[Any, Any, Any]],
        audit: bool = False,
        audit_each_barrier: bool = False,
        audit_sample_prob: float = 1.0,
        program_factory=None,
    ) -> ClusterStats:
        """Run one generator program per node to completion.

        ``audit`` runs the coherence auditor once at the end of the run;
        ``audit_each_barrier`` additionally runs it at every global
        barrier's all-arrived instant (a quiescent point — release fences
        drained, nobody resumed).  ``audit_sample_prob < 1`` makes the
        per-barrier audits sample that fraction of blocks (seeded, so runs
        replay); the end-of-run audit always scans everything.

        Partition survival: if the reliable transport gave up on one or
        more channels (``PartitionScenario`` or organic loss past
        ``max_retries``) and the affected programs could not finish, the
        run returns a *degraded* ``ClusterStats`` — ``completed=False``,
        counters up to the give-up point, and a ``failure`` report naming
        the stuck programs, partitioned channels, parked frames and any
        residual coherence violations among the surviving nodes — instead
        of raising.  A genuine deadlock (no give-up) still raises.

        Fail-stop survival: crash scenarios install a
        :class:`~repro.tempest.recovery.RecoveryManager`.  If the crash is
        detected, every dead node restarts, and a barrier checkpoint
        exists, the run rolls back and re-executes instead of degrading;
        ``program_factory(node_id, resume_cursor)`` must then produce a
        fresh replay generator (the runtime passes one automatically).
        """
        if set(programs) != set(range(self.n_nodes)):
            raise ValueError(
                f"need exactly one program per node; got {sorted(programs)}"
            )
        fc = self.config.faults
        if fc.crashes or fc.checkpoint_every:
            from repro.tempest.recovery import RecoveryManager

            self.recovery = RecoveryManager(self, program_factory)
        if audit_each_barrier:
            audit_rng = np.random.default_rng(0)
            self.barrier_net.on_complete = lambda n: self.audit(
                f"barrier {n}, protocol={self.protocol_name}",
                sample_prob=audit_sample_prob,
                rng=audit_rng,
            )
        guards = [
            self.engine.spawn(programs[n], label=f"node{n}") for n in range(self.n_nodes)
        ]
        finish_ns = [0] * self.n_nodes
        faults_on = fc.enabled

        def watch_finishes(gs):
            # Under fault injection, armed retransmit timers keep popping
            # (as no-ops) after the last node finishes and would inflate
            # ``engine.now``; take completion as the last program's finish.
            for i, g in enumerate(gs):
                g.add_callback(
                    lambda _v, i=i: finish_ns.__setitem__(i, self.engine.now)
                )

        if faults_on:
            watch_finishes(guards)
        if self.recovery is not None:
            self.recovery.install(guards)
        while True:
            self.engine.run()
            if self.recovery is not None and self.recovery.pending_recovery:
                # The heap is drained: no stale timers or handler effects
                # survive into the restored world.  Roll back and rerun.
                guards = self.recovery.perform_rollback()
                if faults_on:
                    watch_finishes(guards)
                continue
            break
        self.stats.events_dispatched = self.engine.events_dispatched
        self.stats.max_queue_depth = self.engine.max_queue_depth
        stuck = [f.label for f in guards if not f.resolved]
        if stuck:
            if not (faults_on and self.stats.total_gave_up > 0):
                # Not a transport give-up: a real bug (e.g. a node stuck at
                # a barrier nobody else reached).  Keep the loud failure.
                raise SimulationError(
                    f"deadlock: processes never finished: {stuck}"
                )
            # Degraded completion: the partition never healed.  Everything
            # accumulated up to the give-up point survives in the stats.
            self.stats.completed = False
            self.stats.elapsed_ns = self.engine.now
            self.stats.failure = self._failure_report(stuck)
            return self.stats
        self.stats.elapsed_ns = max(finish_ns) if faults_on else self.engine.now
        if audit:
            context = f"end of run, protocol={self.protocol_name}"
            if any(e.get("healed") for e in self.stats.partition_events):
                # Channels gave up mid-run but a healing scenario drained
                # them; the audit now re-proves coherence post-heal.
                context = f"post-heal {context}"
            self.audit(context)
        return self.stats

    def _failure_report(self, stuck: list[str]) -> dict:
        """Describe a degraded run: who is stuck, which channels gave up,
        which nodes are unreachable, and what residual coherence damage the
        surviving nodes can see."""
        transport = self.network.transport
        channels = transport.partitioned_channels()
        now = self.engine.now
        unreachable = sorted(
            {
                n
                for s in self.config.faults.partitions
                if s.active_at(now)
                for n in s.nodes
            }
        )
        if not unreachable:
            # Organic give-up (no scenario): the far ends of the dead
            # channels are the effectively unreachable nodes.
            unreachable = sorted({c["dst"] for c in channels})
        crashed = self.recovery.dead_nodes() if self.recovery is not None else []
        if crashed:
            unreachable = sorted(set(unreachable) | set(crashed))
        residual = audit_violations(
            self.directory,
            self.access,
            skip_nodes=frozenset(unreachable),
        )
        return {
            "stuck": stuck,
            "gave_up": self.stats.total_gave_up,
            "partitioned_channels": channels,
            "parked_frames": transport.parked_frames,
            "unreachable_nodes": unreachable,
            "crashed_nodes": crashed,
            "partition_events": list(self.stats.partition_events),
            "residual_violations": residual,
        }
