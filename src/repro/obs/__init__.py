"""Structured observability for the simulated cluster.

The simulator's components (engine, coherence protocol, reliable
transport, combining buffers, switch ports, barriers) publish typed
span/instant events to one :class:`~repro.obs.bus.EventBus`; everything
else in this package is a *subscriber*:

* :class:`~repro.obs.chrome.ChromeTraceExporter` — Chrome trace-event
  JSON (one track per node plus transport/switch tracks), loadable in
  Perfetto or ``chrome://tracing``;
* :class:`~repro.obs.profile.PhaseProfiler` — attributes each node's
  wall time to compute / read-miss / write-miss / barrier-wait /
  protocol-overhead / transport-recovery buckets per parallel phase
  (the paper's Figure 4 decomposition);
* :class:`~repro.obs.critical.CriticalPathAnalyzer` — follows the
  causal ``parent`` links every publisher threads through its events to
  extract the run's exact critical path, decomposed into compute /
  wire / port-queue / protocol / transport-recovery / barrier-slack,
  with what-if bounds per cost class;
* :class:`~repro.obs.metrics.MetricsRegistry` — re-derives the
  ``NodeStats``/``ClusterStats`` counters from bus events, so traces
  and counters can never silently disagree;
* :mod:`repro.obs.schema` — a dependency-free validator for the
  exported trace JSON (``python -m repro.obs.schema trace.json``).

The bus never schedules engine events and subscribers never touch
simulation state, so attaching any combination of them cannot perturb a
run: schedules, stats and numerics stay byte-identical.  With no bus
attached (the default) not a single event object is constructed.

See ``docs/observability.md`` for the event taxonomy.
"""

from repro.obs.bus import Event, EventBus
from repro.obs.chrome import ChromeTraceExporter
from repro.obs.critical import COST_CLASSES, CriticalPathAnalyzer, render_critical_path
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import BUCKETS, PhaseProfiler, breakdown_totals, render_breakdown
from repro.obs.schema import validate_chrome_trace

__all__ = [
    "BUCKETS",
    "COST_CLASSES",
    "ChromeTraceExporter",
    "CriticalPathAnalyzer",
    "Event",
    "EventBus",
    "MetricsRegistry",
    "PhaseProfiler",
    "breakdown_totals",
    "render_breakdown",
    "render_critical_path",
    "validate_chrome_trace",
]
