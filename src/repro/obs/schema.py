"""Dependency-free validator for exported Chrome trace-event JSON.

Checks the subset of the trace-event format this repo emits (``X``
complete spans, ``i`` instants, ``M`` metadata, ``s``/``f`` flow
arrows) well enough to catch regressions — wrong field types, negative
times, missing tracks, dangling flow ids — without pulling in
``jsonschema``.

Usage::

    python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import json
import sys

_NUMBER = (int, float)
_MAX_ERRORS = 25


def _check_event(i: int, ev, errors: list[str]) -> None:
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        errors.append(f"{where}: not an object")
        return
    ph = ev.get("ph")
    if ph not in ("X", "i", "M", "s", "f"):
        errors.append(f"{where}: unsupported ph {ph!r}")
        return
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        errors.append(f"{where}: name must be a non-empty string")
    if not isinstance(ev.get("pid"), int):
        errors.append(f"{where}: pid must be an int")
    if ph == "M":
        if ev["name"] in ("process_name", "thread_name") and not isinstance(
            ev.get("args", {}).get("name"), str
        ):
            errors.append(f"{where}: metadata args.name must be a string")
        return
    if not isinstance(ev.get("tid"), int):
        errors.append(f"{where}: tid must be an int")
    ts = ev.get("ts")
    if not isinstance(ts, _NUMBER) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: ts must be a non-negative number")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, _NUMBER) or isinstance(dur, bool) or dur < 0:
            errors.append(f"{where}: X event needs non-negative dur")
    if ph in ("s", "f") and not isinstance(ev.get("id"), (int, str)):
        errors.append(f"{where}: flow event needs an id")
    if "args" in ev and not isinstance(ev["args"], dict):
        errors.append(f"{where}: args must be an object")


def validate_chrome_trace(data) -> list[str]:
    """Return a list of problems; empty means the trace is valid."""
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    errors: list[str] = []
    if not events:
        errors.append("traceEvents is empty")
    saw_real = False
    flows: dict = {}
    for i, ev in enumerate(events):
        _check_event(i, ev, errors)
        if isinstance(ev, dict):
            ph = ev.get("ph")
            if ph in ("X", "i"):
                saw_real = True
            elif ph in ("s", "f") and "id" in ev:
                entry = flows.setdefault(ev["id"], {"s": None, "f": None})
                ts = ev.get("ts")
                if isinstance(ts, _NUMBER) and not isinstance(ts, bool):
                    entry[ph] = ts
        if len(errors) >= _MAX_ERRORS:
            errors.append("... (more errors suppressed)")
            break
    # Flow pairing: every id needs a start and a finish, in time order.
    # The exporter only materializes complete pairs, so a dangling id
    # means the pairing logic (or ring-buffer eviction handling) broke.
    for fid, entry in flows.items():
        if len(errors) >= _MAX_ERRORS:
            break
        if entry["s"] is None:
            errors.append(f"flow id {fid!r}: finish without a start")
        elif entry["f"] is None:
            errors.append(f"flow id {fid!r}: start without a finish")
        elif entry["s"] > entry["f"]:
            errors.append(
                f"flow id {fid!r}: start at {entry['s']} after finish "
                f"at {entry['f']}"
            )
    if not saw_real and events:
        errors.append("trace contains only metadata events")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load {argv[0]}: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(data)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        return 1
    n = sum(1 for ev in data["traceEvents"] if ev.get("ph") != "M")
    print(f"OK: {argv[0]} is a valid Chrome trace ({n} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
