"""Per-phase time-breakdown profiler (the paper's Figure 4).

Every replayed trace op is a contiguous span on its node's timeline
(ops run back-to-back from t=0), so summing op durations decomposes a
node's total simulated time *exactly* — to the nanosecond — into the
six buckets below.  Phase markers (``phase`` events emitted by
``run_shmem``) switch the accumulation target, so each parallel phase
of the source program gets its own stacked bar.

Buckets:

* ``compute``             — modelled computation (``compute`` ops);
* ``read_miss``           — read-fault detection + block fetch stalls;
* ``write_miss``          — write-fault detection + upgrade stalls;
* ``barrier_wait``        — drain + fence + barrier arrival/release;
* ``protocol_overhead``   — everything else the protocol charges the
  node inline: reductions, compiler-extension calls (mk_writable,
  flushes, prefetch issue), message-passing ops;
* ``transport_recovery``  — the part of any *non-compute* bucket spent
  while one of the node's outgoing channels was given up (partition
  windows, from ``channel.giveup``/``channel.heal``), i.e. time
  attributable to riding out a fault rather than the protocol itself;
* ``recovery``            — fail-stop survival cost: barrier-checkpoint
  write windows (``ckpt.write``) carved out of the overlapped waits, the
  outage gap between each node's last pre-crash op and the rollback
  restart (``recover.rollback``), and all re-executed op time (ops whose
  trace index lies below the cursor the node had already reached before
  the crash).

Crash-recovery runs break the back-to-back tiling once per rollback —
every node's timeline has exactly one hole, from its last completed op to
the common restart instant.  The profiler fills that hole into the
``recovery`` bucket, so the to-the-nanosecond bucket-sum invariant (and
``max(node_total_ns) == elapsed_ns``) holds for recovered runs too.
"""

from __future__ import annotations

from repro.obs.bus import Event, EventBus

BUCKETS = (
    "compute",
    "read_miss",
    "write_miss",
    "barrier_wait",
    "protocol_overhead",
    "transport_recovery",
    "recovery",
)

# Trace-op kind -> bucket; unlisted op kinds charge protocol overhead.
OP_BUCKET = {
    "compute": "compute",
    "read": "read_miss",
    "write": "write_miss",
    "barrier": "barrier_wait",
}


class PhaseProfiler:
    """Bus subscriber accumulating per-phase, per-node bucket times."""

    def __init__(self, bus: EventBus, n_nodes: int):
        self.n_nodes = n_nodes
        self._phases: dict[int, dict] = {}
        self._cur = [None] * n_nodes  # current phase entry per node
        # Partition bookkeeping: a "recovery window" for node n is open
        # while n has at least one given-up outgoing channel.
        self._open_cuts = [0] * n_nodes
        self._cut_since = [0] * n_nodes
        self._windows: list[list[tuple[int, int]]] = [[] for _ in range(n_nodes)]
        self.node_total_ns = [0] * n_nodes
        # Fail-stop bookkeeping: end of each node's last completed op
        # (tiling frontier), checkpoint-write windows (global — every node
        # waits the write out together), and the per-node trace index below
        # which op events are re-execution after a rollback.
        self._last_end = [0] * n_nodes
        self._ckpt_windows: list[tuple[int, int]] = []
        self._reexec_until = [-1] * n_nodes
        self._sub = bus.subscribe(
            self._on_event,
            kinds={
                "op", "phase", "channel.giveup", "channel.heal",
                "ckpt.write", "recover.rollback",
            },
        )

    def _entry(self, index: int, label: str = "") -> dict:
        e = self._phases.get(index)
        if e is None:
            e = self._phases[index] = {
                "index": index,
                "label": label,
                "nodes": [dict.fromkeys(BUCKETS, 0) for _ in range(self.n_nodes)],
            }
        elif label and not e["label"]:
            e["label"] = label
        return e

    def _on_event(self, ev: Event) -> None:
        kind = ev.kind
        if kind == "op":
            node = ev.node
            entry = self._cur[node]
            if entry is None:
                # Ops before any phase marker (programs replayed without
                # markers) land in a synthetic phase 0.
                entry = self._cur[node] = self._entry(0, "startup")
            dur = ev.dur_ns
            self.node_total_ns[node] += dur
            self._last_end[node] = ev.t_ns + dur
            buckets = entry["nodes"][node]
            idx = ev.args.get("idx")
            if idx is not None and idx < self._reexec_until[node]:
                # Re-executed work after a rollback: the node already did
                # this op once; the whole span is recovery cost.
                buckets["recovery"] += dur
                return
            bucket = OP_BUCKET.get(ev.args["op"], "protocol_overhead")
            if bucket != "compute":
                recovered = self._recovery_overlap(node, ev.t_ns, ev.t_ns + dur)
                if recovered:
                    buckets["transport_recovery"] += recovered
                    dur -= recovered
                ckpt = self._ckpt_overlap(ev.t_ns, ev.t_ns + ev.dur_ns)
                if ckpt:
                    ckpt = min(ckpt, dur)
                    buckets["recovery"] += ckpt
                    dur -= ckpt
            buckets[bucket] += dur
        elif kind == "phase":
            self._cur[ev.node] = self._entry(ev.args["index"], ev.args["label"])
        elif kind == "ckpt.write":
            if ev.dur_ns:
                self._ckpt_windows.append((ev.t_ns, ev.t_ns + ev.dur_ns))
        elif kind == "recover.rollback":
            # Fill each node's outage hole — last completed op to the
            # common restart instant — so the tiling invariant survives.
            restart = ev.t_ns
            for node in range(self.n_nodes):
                # The transport reset heals every given-up channel without
                # emitting per-channel heal events; close open partition
                # windows here so post-recovery time is not misattributed
                # to ``transport_recovery``.
                if self._open_cuts[node]:
                    self._open_cuts[node] = 0
                    self._windows[node].append((self._cut_since[node], restart))
            for node in range(self.n_nodes):
                gap = restart - self._last_end[node]
                if gap > 0:
                    entry = self._cur[node]
                    if entry is None:
                        entry = self._cur[node] = self._entry(0, "startup")
                    entry["nodes"][node]["recovery"] += gap
                    self.node_total_ns[node] += gap
                    self._last_end[node] = restart
            reached = ev.args.get("reached") or []
            for node, upto in enumerate(reached[: self.n_nodes]):
                self._reexec_until[node] = upto
        elif kind == "channel.giveup":
            node = ev.node
            if self._open_cuts[node] == 0:
                self._cut_since[node] = ev.t_ns
            self._open_cuts[node] += 1
        elif kind == "channel.heal":
            node = ev.node
            if self._open_cuts[node] > 0:
                self._open_cuts[node] -= 1
                if self._open_cuts[node] == 0:
                    self._windows[node].append((self._cut_since[node], ev.t_ns))

    def _recovery_overlap(self, node: int, t0: int, t1: int) -> int:
        """Overlap of ``[t0, t1)`` with the node's recovery windows."""
        total = 0
        for w0, w1 in self._windows[node]:
            lo = t0 if t0 > w0 else w0
            hi = t1 if t1 < w1 else w1
            if hi > lo:
                total += hi - lo
        if self._open_cuts[node]:  # window still open at op end
            lo = max(t0, self._cut_since[node])
            if t1 > lo:
                total += t1 - lo
        return total if total < t1 - t0 else t1 - t0

    def _ckpt_overlap(self, t0: int, t1: int) -> int:
        """Overlap of ``[t0, t1)`` with checkpoint-write windows."""
        total = 0
        for w0, w1 in self._ckpt_windows:
            lo = t0 if t0 > w0 else w0
            hi = t1 if t1 < w1 else w1
            if hi > lo:
                total += hi - lo
        return total

    def breakdown(self) -> dict:
        """Structured result stored as ``RunResult.phase_breakdown``."""
        phases = []
        for index in sorted(self._phases):
            e = self._phases[index]
            total = dict.fromkeys(BUCKETS, 0)
            for nb in e["nodes"]:
                for k, v in nb.items():
                    total[k] += v
            phases.append(
                {
                    "index": e["index"],
                    "label": e["label"],
                    "node_ns": [dict(nb) for nb in e["nodes"]],
                    "total_ns": total,
                }
            )
        return {
            "buckets": list(BUCKETS),
            "n_nodes": self.n_nodes,
            "node_total_ns": list(self.node_total_ns),
            "phases": phases,
        }


def breakdown_totals(breakdown: dict) -> dict:
    """Whole-run bucket totals (summed over phases and nodes)."""
    totals = dict.fromkeys(breakdown["buckets"], 0)
    for phase in breakdown["phases"]:
        for k, v in phase["total_ns"].items():
            totals[k] += v
    return totals


def render_breakdown(breakdown: dict, max_phases: int = 40) -> str:
    """Fixed-width per-phase table for terminal output."""
    buckets = breakdown["buckets"]
    head = ["phase".ljust(22)] + [b[:12].rjust(13) for b in buckets] + [
        "total_ms".rjust(10)
    ]
    lines = ["".join(head)]
    phases = breakdown["phases"]
    shown = phases[:max_phases]
    for phase in shown:
        label = f"{phase['index']:>3} {phase['label'][:17]}"
        total = sum(phase["total_ns"].values())
        row = [label.ljust(22)]
        for b in buckets:
            ns = phase["total_ns"][b]
            pct = 100.0 * ns / total if total else 0.0
            row.append(f"{pct:12.1f}%")
        row.append(f"{total / 1e6:10.3f}")
        lines.append("".join(row))
    if len(phases) > len(shown):
        lines.append(f"... {len(phases) - len(shown)} more phases")
    totals = breakdown_totals(breakdown)
    grand = sum(totals.values())
    row = ["all phases".ljust(22)]
    for b in buckets:
        pct = 100.0 * totals[b] / grand if grand else 0.0
        row.append(f"{pct:12.1f}%")
    row.append(f"{grand / 1e6:10.3f}")
    lines.append("".join(row))
    return "\n".join(lines)
