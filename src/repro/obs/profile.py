"""Per-phase time-breakdown profiler (the paper's Figure 4).

Every replayed trace op is a contiguous span on its node's timeline
(ops run back-to-back from t=0), so summing op durations decomposes a
node's total simulated time *exactly* — to the nanosecond — into the
six buckets below.  Phase markers (``phase`` events emitted by
``run_shmem``) switch the accumulation target, so each parallel phase
of the source program gets its own stacked bar.

Buckets:

* ``compute``             — modelled computation (``compute`` ops);
* ``read_miss``           — read-fault detection + block fetch stalls;
* ``write_miss``          — write-fault detection + upgrade stalls;
* ``barrier_wait``        — drain + fence + barrier arrival/release;
* ``protocol_overhead``   — everything else the protocol charges the
  node inline: reductions, compiler-extension calls (mk_writable,
  flushes, prefetch issue), message-passing ops;
* ``transport_recovery``  — the part of any *non-compute* bucket spent
  while one of the node's outgoing channels was given up (partition
  windows, from ``channel.giveup``/``channel.heal``), i.e. time
  attributable to riding out a fault rather than the protocol itself.
"""

from __future__ import annotations

from repro.obs.bus import Event, EventBus

BUCKETS = (
    "compute",
    "read_miss",
    "write_miss",
    "barrier_wait",
    "protocol_overhead",
    "transport_recovery",
)

# Trace-op kind -> bucket; unlisted op kinds charge protocol overhead.
OP_BUCKET = {
    "compute": "compute",
    "read": "read_miss",
    "write": "write_miss",
    "barrier": "barrier_wait",
}


class PhaseProfiler:
    """Bus subscriber accumulating per-phase, per-node bucket times."""

    def __init__(self, bus: EventBus, n_nodes: int):
        self.n_nodes = n_nodes
        self._phases: dict[int, dict] = {}
        self._cur = [None] * n_nodes  # current phase entry per node
        # Partition bookkeeping: a "recovery window" for node n is open
        # while n has at least one given-up outgoing channel.
        self._open_cuts = [0] * n_nodes
        self._cut_since = [0] * n_nodes
        self._windows: list[list[tuple[int, int]]] = [[] for _ in range(n_nodes)]
        self.node_total_ns = [0] * n_nodes
        self._sub = bus.subscribe(
            self._on_event,
            kinds={"op", "phase", "channel.giveup", "channel.heal"},
        )

    def _entry(self, index: int, label: str = "") -> dict:
        e = self._phases.get(index)
        if e is None:
            e = self._phases[index] = {
                "index": index,
                "label": label,
                "nodes": [dict.fromkeys(BUCKETS, 0) for _ in range(self.n_nodes)],
            }
        elif label and not e["label"]:
            e["label"] = label
        return e

    def _on_event(self, ev: Event) -> None:
        kind = ev.kind
        if kind == "op":
            node = ev.node
            entry = self._cur[node]
            if entry is None:
                # Ops before any phase marker (programs replayed without
                # markers) land in a synthetic phase 0.
                entry = self._cur[node] = self._entry(0, "startup")
            dur = ev.dur_ns
            self.node_total_ns[node] += dur
            buckets = entry["nodes"][node]
            bucket = OP_BUCKET.get(ev.args["op"], "protocol_overhead")
            if bucket != "compute":
                recovered = self._recovery_overlap(node, ev.t_ns, ev.t_ns + dur)
                if recovered:
                    buckets["transport_recovery"] += recovered
                    dur -= recovered
            buckets[bucket] += dur
        elif kind == "phase":
            self._cur[ev.node] = self._entry(ev.args["index"], ev.args["label"])
        elif kind == "channel.giveup":
            node = ev.node
            if self._open_cuts[node] == 0:
                self._cut_since[node] = ev.t_ns
            self._open_cuts[node] += 1
        elif kind == "channel.heal":
            node = ev.node
            if self._open_cuts[node] > 0:
                self._open_cuts[node] -= 1
                if self._open_cuts[node] == 0:
                    self._windows[node].append((self._cut_since[node], ev.t_ns))

    def _recovery_overlap(self, node: int, t0: int, t1: int) -> int:
        """Overlap of ``[t0, t1)`` with the node's recovery windows."""
        total = 0
        for w0, w1 in self._windows[node]:
            lo = t0 if t0 > w0 else w0
            hi = t1 if t1 < w1 else w1
            if hi > lo:
                total += hi - lo
        if self._open_cuts[node]:  # window still open at op end
            lo = max(t0, self._cut_since[node])
            if t1 > lo:
                total += t1 - lo
        return total if total < t1 - t0 else t1 - t0

    def breakdown(self) -> dict:
        """Structured result stored as ``RunResult.phase_breakdown``."""
        phases = []
        for index in sorted(self._phases):
            e = self._phases[index]
            total = dict.fromkeys(BUCKETS, 0)
            for nb in e["nodes"]:
                for k, v in nb.items():
                    total[k] += v
            phases.append(
                {
                    "index": e["index"],
                    "label": e["label"],
                    "node_ns": [dict(nb) for nb in e["nodes"]],
                    "total_ns": total,
                }
            )
        return {
            "buckets": list(BUCKETS),
            "n_nodes": self.n_nodes,
            "node_total_ns": list(self.node_total_ns),
            "phases": phases,
        }


def breakdown_totals(breakdown: dict) -> dict:
    """Whole-run bucket totals (summed over phases and nodes)."""
    totals = dict.fromkeys(breakdown["buckets"], 0)
    for phase in breakdown["phases"]:
        for k, v in phase["total_ns"].items():
            totals[k] += v
    return totals


def render_breakdown(breakdown: dict, max_phases: int = 40) -> str:
    """Fixed-width per-phase table for terminal output."""
    buckets = breakdown["buckets"]
    head = ["phase".ljust(22)] + [b[:12].rjust(13) for b in buckets] + [
        "total_ms".rjust(10)
    ]
    lines = ["".join(head)]
    phases = breakdown["phases"]
    shown = phases[:max_phases]
    for phase in shown:
        label = f"{phase['index']:>3} {phase['label'][:17]}"
        total = sum(phase["total_ns"].values())
        row = [label.ljust(22)]
        for b in buckets:
            ns = phase["total_ns"][b]
            pct = 100.0 * ns / total if total else 0.0
            row.append(f"{pct:12.1f}%")
        row.append(f"{total / 1e6:10.3f}")
        lines.append("".join(row))
    if len(phases) > len(shown):
        lines.append(f"... {len(phases) - len(shown)} more phases")
    totals = breakdown_totals(breakdown)
    grand = sum(totals.values())
    row = ["all phases".ljust(22)]
    for b in buckets:
        pct = 100.0 * totals[b] / grand if grand else 0.0
        row.append(f"{pct:12.1f}%")
    row.append(f"{grand / 1e6:10.3f}")
    lines.append("".join(row))
    return "\n".join(lines)
