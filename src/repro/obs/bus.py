"""The event bus: typed span/instant events, synchronous fan-out.

Design constraints, in order of importance:

1. **Determinism.**  The engine's heap breaks simultaneous-event ties
   with a monotonic sequence number, so *any* extra scheduled event
   shifts every later tiebreaker and can reorder a run.  The bus
   therefore never touches the engine: ``emit`` fans out to subscribers
   synchronously, inline, at the publishing site.  Subscribers must not
   mutate simulation state.
2. **Zero cost when off.**  Components hold ``self.obs = None`` and
   guard every publish with ``if self.obs is not None``; with no bus
   attached no :class:`Event` is ever constructed.
3. **Low overhead when on.**  One object per event, per-subscriber kind
   filtering with frozensets, no string formatting on the hot path.

Event kinds are dotted strings (``miss.read``, ``frame.retransmit``,
``channel.heal``, ...); the full taxonomy lives in
``docs/observability.md``.  A span carries ``dur_ns > 0`` and starts at
``t_ns``; an instant has ``dur_ns == 0``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional


class Event:
    """One published event.  ``args`` is kind-specific payload.

    ``seq`` is the bus-wide publish ordinal (unique, monotonic) and
    ``parent`` is the ``seq`` of the event that *caused* this one — the
    causal-lineage edge the critical-path analyzer walks.  ``parent`` is
    None at chain roots (compute ops, probes, timer-driven events).  The
    keyword is deliberately ``parent``, not ``cause``: several emit
    sites already carry a ``cause=`` payload kwarg (``frame.drop``).
    """

    __slots__ = ("kind", "t_ns", "dur_ns", "node", "args", "seq", "parent")

    def __init__(self, kind: str, t_ns: int, dur_ns: int, node, args: dict,
                 seq: int = 0, parent=None):
        self.kind = kind
        self.t_ns = t_ns
        self.dur_ns = dur_ns
        self.node = node
        self.args = args
        self.seq = seq
        self.parent = parent

    def __repr__(self) -> str:  # debugging aid only; never on the hot path
        span = f"+{self.dur_ns}" if self.dur_ns else "i"
        lin = f" #{self.seq}" + (f"<-{self.parent}" if self.parent is not None else "")
        return f"Event({self.kind} @{self.t_ns}ns {span} n{self.node}{lin} {self.args})"


class Subscription:
    __slots__ = ("callback", "kinds")

    def __init__(self, callback: Callable[[Event], None], kinds):
        self.callback = callback
        self.kinds = kinds  # frozenset of exact kinds, or None for all


class EventBus:
    __slots__ = ("_subs", "events_published")

    def __init__(self):
        self._subs: list[Subscription] = []
        self.events_published = 0

    def subscribe(
        self,
        callback: Callable[[Event], None],
        kinds: Optional[Iterable[str]] = None,
    ) -> Subscription:
        """Register ``callback``; restrict to exact ``kinds`` if given."""
        sub = Subscription(callback, frozenset(kinds) if kinds is not None else None)
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subs.remove(sub)

    @property
    def n_subscribers(self) -> int:
        return len(self._subs)

    def emit(self, kind: str, t_ns: int, dur_ns: int = 0, node=None,
             parent=None, **args) -> Event:
        """Publish one event and fan it out synchronously.

        Never schedules engine work; safe to call from inside process
        fragments, handlers, and resource-completion callbacks.
        ``parent`` is the causal predecessor's ``Event.seq`` (or None
        for a root); the returned event carries its own ``seq`` so
        publishers can thread lineage through closures.
        """
        seq = self.events_published
        self.events_published = seq + 1
        ev = Event(kind, t_ns, dur_ns, node, args, seq, parent)
        for sub in self._subs:
            if sub.kinds is None or kind in sub.kinds:
                sub.callback(ev)
        return ev
