"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Events are laid out on two processes:

* pid 1 ``cluster`` — one thread per node; spans (miss resolutions,
  barriers, replayed trace ops) and node-charged instants land here.
* pid 2 ``fabric`` — ``transport`` (frame lifecycle, channel cut/heal),
  ``switch`` (port traversals), and ``global`` (node-less events)
  threads.

Timestamps convert from simulated nanoseconds to the format's
microseconds; ``displayTimeUnit: "ns"`` keeps Perfetto's cursor honest.
A bounded ring buffer (``max_events``) caps memory on long runs; the
oldest events are dropped first and counted in :attr:`dropped`.

Each frame's wire departure is paired with its delivery as a Perfetto
flow arrow (``ph: "s"``/``"f"`` with a shared id), and every exported
event carries its lineage ``seq``/``parent`` in ``args`` so causal
chains can be followed in the UI.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from typing import Iterable, Optional

from repro.obs.bus import Event, EventBus

_PID_CLUSTER = 1
_PID_FABRIC = 2
_TID_TRANSPORT = 0
_TID_SWITCH = 1
_TID_GLOBAL = 2


def _json_safe(value):
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, frozenset):
        return sorted(_json_safe(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class ChromeTraceExporter:
    """Bus subscriber that renders retained events as a Chrome trace."""

    def __init__(
        self,
        bus: EventBus,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 1_000_000,
        n_nodes: Optional[int] = None,
    ):
        # ``kinds`` are prefix filters: "miss" keeps "miss.read" and
        # "miss.write"; "frame.drop" keeps exactly that kind.
        self.kinds = tuple(kinds) if kinds else None
        self.events: deque[Event] = deque(maxlen=max(1, max_events))
        self.dropped = 0
        self.n_nodes = n_nodes
        self._sub = bus.subscribe(self._on_event)

    def _on_event(self, ev: Event) -> None:
        if self.kinds is not None and not any(
            ev.kind == k or ev.kind.startswith(k + ".") for k in self.kinds
        ):
            return
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(ev)

    @staticmethod
    def _track(ev: Event):
        cat = ev.kind.split(".", 1)[0]
        if cat in ("frame", "channel"):
            return _PID_FABRIC, _TID_TRANSPORT
        if cat == "switch":
            return _PID_FABRIC, _TID_SWITCH
        if ev.node is None:
            return _PID_FABRIC, _TID_GLOBAL
        return _PID_CLUSTER, ev.node

    @staticmethod
    def _name(ev: Event) -> str:
        # Readability in Perfetto: replayed ops and sends surface the
        # specific op / message kind instead of the generic event kind.
        if ev.kind == "op":
            return f"op:{ev.args.get('op', '?')}"
        if ev.kind == "msg.send":
            msg = ev.args.get("msg")
            return f"send:{_json_safe(msg)}"
        return ev.kind

    def to_chrome(self) -> dict:
        records = []
        node_tids = set()
        fabric_tids = set()
        # Flow arrows (ph "s"/"f") pair each frame's wire departure with
        # its delivery.  Pending sends are keyed by (src, dst, frame seq):
        # a retransmitted frame overwrites its earlier send (the arrow
        # tracks the copy that arrived), and transport resets that reuse
        # sequence spaces overwrite stale entries the same way.  Pairs are
        # emitted only when both endpoints were retained in the ring, so
        # eviction can never leave a dangling flow id.
        pending: dict[tuple, float] = {}
        flows = []
        next_flow_id = 1
        for ev in self.events:
            pid, tid = self._track(ev)
            if pid == _PID_CLUSTER:
                node_tids.add(tid)
            else:
                fabric_tids.add(tid)
            ts = ev.t_ns / 1000.0
            rec = {
                "name": self._name(ev),
                "cat": ev.kind.split(".", 1)[0],
                "pid": pid,
                "tid": tid,
                "ts": ts,
            }
            if ev.dur_ns > 0:
                rec["ph"] = "X"
                rec["dur"] = ev.dur_ns / 1000.0
            else:
                rec["ph"] = "i"
                rec["s"] = "t"
            args = {k: _json_safe(v) for k, v in ev.args.items()}
            args["kind"] = ev.kind
            args["seq"] = ev.seq
            if ev.parent is not None:
                args["parent"] = ev.parent
            if ev.node is not None:
                args["node"] = ev.node
            rec["args"] = args
            records.append(rec)
            if ev.kind == "frame.send":
                pending[(ev.node, ev.args["dst"], ev.args["seq"])] = ts
            elif ev.kind == "frame.deliver":
                sent_ts = pending.pop(
                    (ev.args["src"], ev.node, ev.args["seq"]), None
                )
                if sent_ts is not None:
                    flow = {
                        "name": "frame",
                        "cat": "flow",
                        "id": next_flow_id,
                        "pid": _PID_FABRIC,
                        "tid": _TID_TRANSPORT,
                    }
                    flows.append({**flow, "ph": "s", "ts": sent_ts})
                    flows.append({**flow, "ph": "f", "bp": "e", "ts": ts})
                    next_flow_id += 1
        records.extend(flows)

        meta = []

        def _meta(name: str, pid: int, label: str, tid=None):
            rec = {"name": name, "ph": "M", "pid": pid, "args": {"name": label}}
            if tid is not None:
                rec["tid"] = tid
            meta.append(rec)

        _meta("process_name", _PID_CLUSTER, "cluster")
        if self.n_nodes is not None:
            node_tids.update(range(self.n_nodes))
        for tid in sorted(node_tids):
            _meta("thread_name", _PID_CLUSTER, f"node {tid}", tid)
        _meta("process_name", _PID_FABRIC, "fabric")
        for tid, label in (
            (_TID_TRANSPORT, "transport"),
            (_TID_SWITCH, "switch"),
            (_TID_GLOBAL, "global"),
        ):
            if tid in fabric_tids:
                _meta("thread_name", _PID_FABRIC, label, tid)

        return {
            "traceEvents": meta + records,
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.obs",
                "retained_events": len(records) - len(flows),
                "flow_pairs": len(flows) // 2,
                "dropped_events": self.dropped,
            },
        }

    def to_json(self, indent=None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def write(self, path) -> int:
        """Write the trace to ``path``; returns the retained event count."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)
        return len(self.events)
