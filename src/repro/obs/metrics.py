"""Metrics registry: re-derive cluster counters from bus events.

The simulator's ``NodeStats``/``ClusterStats`` counters are bumped
inline at dozens of sites; the same sites publish events.  This
subscriber folds those events back into an independent set of
counters so tests can assert the two bookkeeping systems agree —
if an emit site drifts from its counter (or vice versa) the
fuzz-matrix coherence test fails loudly instead of traces silently
lying.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.bus import Event, EventBus

_KINDS = {
    "msg.send",
    "miss.read",
    "miss.join",
    "miss.write",
    "miss.abort",
    "frame.drop",
    "frame.dup",
    "frame.retransmit",
    "channel.giveup",
    "combine.flush",
    "switch.traverse",
    "ckpt.write",
    "recover.rollback",
    "crash.node",
    "recover.resume",
}


class MetricsRegistry:
    def __init__(self, bus: EventBus, n_nodes: int):
        self.n_nodes = n_nodes
        self.read_misses = [0] * n_nodes
        self.remote_read_misses = [0] * n_nodes
        self.prefetch_waits = [0] * n_nodes
        self.write_faults = [0] * n_nodes
        self.messages = [Counter() for _ in range(n_nodes)]
        self.bytes_sent = [0] * n_nodes
        self.net_drops = [0] * n_nodes
        self.net_dups = [0] * n_nodes
        self.net_retransmits = [0] * n_nodes
        self.net_backoffs = [0] * n_nodes
        self.net_spurious_retransmits = [0] * n_nodes
        self.net_gave_up = [0] * n_nodes
        self.combine_flushes = [0] * n_nodes
        self.msgs_combined = [Counter() for _ in range(n_nodes)]
        self.switch_frames = [0] * n_nodes
        self.switch_wait_ns = [0] * n_nodes
        self.ports: dict[int, dict] = {}
        # Fail-stop recovery counters (cluster-level in ClusterStats).
        self.recovery_checkpoints = 0
        self.recovery_checkpoint_bytes = 0
        self.recovery_rollbacks = 0
        self.recovery_ns = 0
        self._crash_t: dict[int, int] = {}
        self._sub = bus.subscribe(self._on_event, kinds=_KINDS)

    def _on_event(self, ev: Event) -> None:
        kind = ev.kind
        node = ev.node
        args = ev.args
        if kind == "msg.send":
            self.messages[node][args["msg"]] += 1
            self.bytes_sent[node] += args["size"]
        elif kind == "miss.read":
            self.read_misses[node] += 1
            if args["remote"]:
                self.remote_read_misses[node] += 1
        elif kind == "miss.join":
            self.prefetch_waits[node] += 1
        elif kind == "miss.write":
            self.write_faults[node] += 1
        elif kind == "miss.abort":
            # A rollback orphaned an in-flight transaction: credit the
            # counters it had bumped, since no completion event will come.
            self.read_misses[node] += args.get("read_misses", 0)
            self.remote_read_misses[node] += args.get("remote_read_misses", 0)
            self.prefetch_waits[node] += args.get("prefetch_waits", 0)
            self.write_faults[node] += args.get("write_faults", 0)
        elif kind == "frame.drop":
            self.net_drops[node] += args.get("n", 1)
        elif kind == "frame.dup":
            self.net_dups[node] += 1
        elif kind == "frame.retransmit":
            self.net_retransmits[node] += 1
            if args["spurious"]:
                self.net_spurious_retransmits[node] += 1
            if args["backoff"]:
                self.net_backoffs[node] += 1
        elif kind == "channel.giveup":
            self.net_gave_up[node] += 1
        elif kind == "combine.flush":
            self.combine_flushes[node] += 1
            counts = self.msgs_combined[node]
            for msg in args["kinds"]:
                counts[msg] += 1
        elif kind == "ckpt.write":
            self.recovery_checkpoints += 1
            self.recovery_checkpoint_bytes += args["nbytes"]
        elif kind == "recover.rollback":
            self.recovery_rollbacks += 1
        elif kind == "crash.node":
            self._crash_t[node] = ev.t_ns
        elif kind == "recover.resume":
            crashed_at = self._crash_t.pop(node, None)
            if crashed_at is not None:
                self.recovery_ns += args["restart_t_ns"] - crashed_at
        elif kind == "switch.traverse":
            self.switch_frames[node] += 1
            self.switch_wait_ns[node] += args["wait_ns"]
            port = self.ports.get(args["port"])
            if port is None:
                port = self.ports[args["port"]] = {
                    "frames": 0,
                    "wait_ns": 0,
                    "busy_ns": 0,
                }
            port["frames"] += 1
            port["wait_ns"] += args["wait_ns"]
            port["busy_ns"] += args["forward_ns"]

    def diff(self, stats) -> list[str]:
        """Mismatches between event-derived counters and ``stats``."""
        out: list[str] = []

        def check(field, derived):
            for n, node_stats in enumerate(stats.nodes):
                want = getattr(node_stats, field)
                got = derived[n]
                if isinstance(want, Counter):
                    want = +want
                    got = +got
                if want != got:
                    out.append(f"node {n} {field}: stats={want!r} events={got!r}")

        check("read_misses", self.read_misses)
        check("remote_read_misses", self.remote_read_misses)
        check("prefetch_waits", self.prefetch_waits)
        check("write_faults", self.write_faults)
        check("messages", self.messages)
        check("bytes_sent", self.bytes_sent)
        check("net_drops", self.net_drops)
        check("net_dups", self.net_dups)
        check("net_retransmits", self.net_retransmits)
        check("net_backoffs", self.net_backoffs)
        check("net_spurious_retransmits", self.net_spurious_retransmits)
        check("net_gave_up", self.net_gave_up)
        check("combine_flushes", self.combine_flushes)
        check("msgs_combined", self.msgs_combined)
        check("switch_frames", self.switch_frames)
        check("switch_wait_ns", self.switch_wait_ns)
        # Recovery counters live on ClusterStats, not per node.
        for field in (
            "recovery_checkpoints",
            "recovery_checkpoint_bytes",
            "recovery_rollbacks",
            "recovery_ns",
        ):
            want = getattr(stats, field)
            got = getattr(self, field)
            if want != got:
                out.append(f"cluster {field}: stats={want} events={got}")
        for ps in stats.ports:
            got = self.ports.get(ps.port, {"frames": 0, "wait_ns": 0, "busy_ns": 0})
            for field in ("frames", "wait_ns", "busy_ns"):
                if getattr(ps, field) != got[field]:
                    out.append(
                        f"port {ps.port} {field}: "
                        f"stats={getattr(ps, field)} events={got[field]}"
                    )
        return out

    def assert_matches(self, stats) -> None:
        mismatches = self.diff(stats)
        if mismatches:
            raise AssertionError(
                "event-derived metrics disagree with ClusterStats:\n  "
                + "\n  ".join(mismatches)
            )
