"""Causal critical-path extraction from lineage-threaded bus events.

Every publisher threads a ``parent`` seq through its events (op -> miss
-> ``msg.send`` -> ``frame.*`` -> switch traverse -> delivery -> handler
-> barrier arrive/release, plus retransmit/give-up/heal and
checkpoint/rollback chains), so the run's events form a dependency DAG.
This module walks that DAG *backward* from the instant the run finished,
partitioning simulated time ``[0, elapsed_ns)`` into consecutive labeled
segments — the run's exact critical path.  Because the segments tile the
interval by construction, their lengths sum to ``elapsed_ns`` to the
nanosecond; :meth:`CriticalPathAnalyzer.result` asserts that invariant.

Cost classes
------------

* ``compute``            — modeled computation on the path;
* ``wire``               — serialization + propagation of messages the
  path waited on (``wire_ns`` of each ``msg.send`` in the causal chain);
* ``port_queue``         — switch output-port queueing (``wait_ns`` of
  ``switch.traverse`` events in the chain);
* ``protocol``           — fault detection, handler occupancy, directory
  work, and every other active protocol cost on the path;
* ``transport_recovery`` — retransmission stalls, partition outage
  windows, checkpoint-write deferrals, rollback re-execution;
* ``barrier_slack``      — time the path spent *waiting for another
  node* (barrier fences and releases, reductions, receive waits).  All
  data-dependence synchronization lands here, so the ``barrier`` what-if
  below is the bound for perfectly overlapped (data-driven) execution.

What-if bounds
--------------

``result()["whatif"]`` reports, per knob, the elapsed time a run would
need if one cost class were free::

    barrier     -> elapsed - barrier_slack     (perfect overlap bound)
    wire        -> elapsed - wire              (infinite-bandwidth bound)
    retransmit  -> elapsed - transport_recovery (fault-free-wire bound)

These are *lower bounds* on the improved runtime (zeroing a class can
shift the critical path onto a different chain, never below this).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.obs.bus import Event, EventBus

__all__ = ["CriticalPathAnalyzer", "COST_CLASSES", "render_critical_path"]

COST_CLASSES = (
    "compute",
    "wire",
    "port_queue",
    "protocol",
    "transport_recovery",
    "barrier_slack",
)

#: op kinds that are pure synchronization waits on the critical path
_WAIT_OPS = frozenset({"reduce", "recv", "mp_recv"})

_KINDS = {
    "op",
    "barrier",
    "barrier.arrive",
    "barrier.release",
    "miss.read",
    "miss.join",
    "miss.write",
    "msg.send",
    "switch.traverse",
    "frame.send",
    "frame.retransmit",
    "recover.rollback",
}


class CriticalPathAnalyzer:
    """Bus subscriber that records the lineage DAG and extracts the path.

    Attach before the run (like :class:`~repro.obs.PhaseProfiler`), then
    call :meth:`result` with the finished run's ``elapsed_ns``.  Recording
    never schedules engine events, so instrumented runs stay
    schedule-identical to plain ones.
    """

    def __init__(self, bus: EventBus, n_nodes: int):
        self.n_nodes = n_nodes
        # Per-node replayed-op spans (t0, t1, op_kind, trace_idx|None),
        # chronological (ops tile each node's timeline back-to-back).
        self._ops: list[list[tuple]] = [[] for _ in range(n_nodes)]
        # Per-node barrier spans (t0, t1, gen, release_msg_seq|None).
        self._bars: list[list[tuple]] = [[] for _ in range(n_nodes)]
        # Per-node miss sub-spans (t0, t1, root_msg_seq|None).
        self._miss: list[list[tuple]] = [[] for _ in range(n_nodes)]
        # gen -> [(t_ns, last_arriver, sent_ns, arrival_msg_seq, manager)]
        # for all-arrived instants; gens repeat across rollbacks, so lists.
        self._arrive: dict[int, list[tuple]] = {}
        # gen -> [t_ns] of release broadcasts.
        self._release: dict[int, list[int]] = {}
        # msg.send seq -> wire_ns; seq -> children seqs (msg + frame).
        self._wire: dict[int, int] = {}
        self._children: dict[int, list[int]] = {}
        # seq -> summed switch wait_ns charged to that msg/frame.
        self._wait: dict[int, int] = {}
        # first-frame seqs referenced by at least one frame.retransmit.
        self._retrans: set[int] = set()
        # (restart_t_ns, reached_cursors) per rollback, chronological.
        self._rollbacks: list[tuple[int, list]] = []
        self._sub = bus.subscribe(self._on_event, kinds=_KINDS)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _on_event(self, ev: Event) -> None:
        kind = ev.kind
        if kind == "op":
            self._ops[ev.node].append(
                (ev.t_ns, ev.t_ns + ev.dur_ns, ev.args["op"], ev.args.get("idx"))
            )
        elif kind == "msg.send":
            self._wire[ev.seq] = ev.args["wire_ns"]
            if ev.parent is not None:
                self._children.setdefault(ev.parent, []).append(ev.seq)
        elif kind == "frame.send":
            if ev.parent is not None:
                self._children.setdefault(ev.parent, []).append(ev.seq)
        elif kind == "switch.traverse":
            if ev.parent is not None and ev.args["wait_ns"]:
                self._wait[ev.parent] = (
                    self._wait.get(ev.parent, 0) + ev.args["wait_ns"]
                )
        elif kind == "frame.retransmit":
            if ev.parent is not None:
                self._retrans.add(ev.parent)
        elif kind in ("miss.read", "miss.join", "miss.write"):
            self._miss[ev.node].append(
                (ev.t_ns, ev.t_ns + ev.dur_ns, ev.parent)
            )
        elif kind == "barrier":
            self._bars[ev.node].append(
                (ev.t_ns, ev.t_ns + ev.dur_ns, ev.args["gen"],
                 ev.args.get("release_msg"))
            )
        elif kind == "barrier.arrive":
            if ev.args["last"]:
                self._arrive.setdefault(ev.args["gen"], []).append(
                    (ev.t_ns, ev.args["src"], ev.args["sent_ns"],
                     ev.parent, ev.node)
                )
        elif kind == "barrier.release":
            self._release.setdefault(ev.args["gen"], []).append(ev.t_ns)
        elif kind == "recover.rollback":
            self._rollbacks.append((ev.t_ns, list(ev.args.get("reached") or [])))

    # ------------------------------------------------------------------ #
    # causal-chain cost lookup
    # ------------------------------------------------------------------ #
    def _chain_costs(self, root: int) -> tuple[int, int, bool]:
        """(wire_ns, port_wait_ns, any_retransmit) over ``root``'s DAG."""
        wire = port = 0
        retrans = False
        stack = [root]
        seen: set[int] = set()
        while stack:
            seq = stack.pop()
            if seq in seen:
                continue
            seen.add(seq)
            wire += self._wire.get(seq, 0)
            port += self._wait.get(seq, 0)
            if seq in self._retrans:
                retrans = True
            kids = self._children.get(seq)
            if kids:
                stack.extend(kids)
        return wire, port, retrans

    def _reexec(self, node: int, t0: int, idx) -> bool:
        """Is the op at ``t0`` (trace index ``idx``) post-rollback redo?"""
        if idx is None or not self._rollbacks:
            return False
        reached = None
        for restart_t, r in self._rollbacks:
            if restart_t <= t0:
                reached = r
            else:
                break
        return (
            reached is not None
            and node < len(reached)
            and idx < reached[node]
        )

    # ------------------------------------------------------------------ #
    # the backward walk
    # ------------------------------------------------------------------ #
    def result(self, elapsed_ns: int) -> dict:
        """Extract the critical path of a completed run.

        Partitions ``[0, elapsed_ns)`` into labeled segments and returns
        per-class totals plus what-if bounds.  Raises ``AssertionError``
        if the segment lengths do not sum to ``elapsed_ns`` exactly —
        the tiling invariant every lineage publisher upholds.
        """
        classes = dict.fromkeys(COST_CLASSES, 0)
        by_node = [dict.fromkeys(COST_CLASSES, 0) for _ in range(self.n_nodes)]
        n_segments = 0
        # Outage holes exist only on rollback runs; elsewhere a gap means
        # residual active work (e.g. trailing handler time) -> protocol.
        gap_class = "transport_recovery" if self._rollbacks else "protocol"

        def out(node: int, a: int, b: int, cls: str) -> None:
            nonlocal n_segments
            d = b - a
            if d <= 0:
                return
            classes[cls] += d
            if 0 <= node < self.n_nodes:
                by_node[node][cls] += d
            n_segments += 1

        def chain_interval(node, a, b, root, rest_class) -> None:
            """Attribute a message-delivery wait [a, b) via its chain."""
            d = b - a
            if d <= 0:
                return
            if root is None:
                out(node, a, b, rest_class)
                return
            wire, port, retrans = self._chain_costs(root)
            wire = min(wire, d)
            port = min(port, d - wire)
            rest = d - wire - port
            if rest:
                out(node, a, a + rest,
                    "transport_recovery" if retrans else rest_class)
            if port:
                out(node, a + rest, a + rest + port, "port_queue")
            if wire:
                out(node, b - wire, b, "wire")

        starts = [[op[0] for op in ops] for ops in self._ops]
        ends = [ops[-1][1] if ops else 0 for ops in self._ops]
        # Bisect indices for the per-op decomposers (lists are
        # chronological by construction).
        self._miss_ends = [[m[1] for m in ms] for ms in self._miss]
        self._bar_starts = [[b[0] for b in bs] for bs in self._bars]
        if elapsed_ns <= 0 or not any(self._ops):
            out(0, 0, elapsed_ns, "protocol")
            return self._package(elapsed_ns, classes, by_node, n_segments)

        node = max(range(self.n_nodes), key=lambda n: ends[n])
        t = elapsed_ns
        while t > 0:
            ops = self._ops[node]
            i = bisect_right(starts[node], t - 1) - 1
            if i < 0:
                out(node, 0, t, gap_class)
                break
            t0, t1, op_kind, idx = ops[i]
            if t1 < t:
                # Hole in the tiling: crash outage (rollback runs) or
                # trailing non-op time.
                out(node, t1, t, gap_class)
                t = t1
                continue
            # The op span covers (t0, t]; decompose [t0, t).
            nxt_t, nxt_node = self._decompose(
                node, t0, t, op_kind, idx, out, chain_interval
            )
            if nxt_t >= t:  # defensive: force strict progress
                out(node, t0, t, "protocol")
                nxt_t, nxt_node = t0, node
            t, node = nxt_t, nxt_node

        total = sum(classes.values())
        assert total == elapsed_ns, (
            f"critical-path tiling broke: segments sum to {total} ns "
            f"but the run took {elapsed_ns} ns"
        )
        return self._package(elapsed_ns, classes, by_node, n_segments)

    def _decompose(
        self, node, t0, t, op_kind, idx, out, chain_interval
    ) -> tuple[int, int]:
        """Attribute one op span [t0, t); return the continuation point."""
        if self._reexec(node, t0, idx):
            out(node, t0, t, "transport_recovery")
            return t0, node
        if op_kind == "compute":
            out(node, t0, t, "compute")
            return t0, node
        if op_kind == "barrier":
            return self._decompose_barrier(node, t0, t, out, chain_interval)
        if op_kind in ("read", "write"):
            self._decompose_miss(node, t0, t, out, chain_interval)
            return t0, node
        if op_kind in _WAIT_OPS:
            out(node, t0, t, "barrier_slack")
            return t0, node
        out(node, t0, t, "protocol")
        return t0, node

    def _decompose_miss(self, node, t0, t, out, chain_interval) -> None:
        """read/write op: miss sub-spans via their chains, gaps protocol."""
        cur = t
        misses = self._miss[node]
        i = bisect_right(self._miss_ends[node], t) - 1
        while i >= 0:
            m0, m1, root = misses[i]
            i -= 1
            if m1 > cur:
                continue
            if m0 < t0 or m1 <= t0:
                break
            out(node, m1, cur, "protocol")
            chain_interval(node, m0, m1, root, "protocol")
            cur = m0
        out(node, t0, cur, "protocol")

    def _decompose_barrier(self, node, t0, t, out, chain_interval):
        """Barrier span: release delivery <- broadcast <- [checkpoint]
        <- last arrival delivery <- the last arriver's own entry; the walk
        then jumps to the last arriver.  Any missing link degrades the
        remaining interval to ``barrier_slack`` without a jump."""
        span = None
        i = bisect_right(self._bar_starts[node], t0) - 1
        if i >= 0:
            _b0, _b1, gen, release_msg = self._bars[node][i]
            span = (gen, release_msg)
        if span is None:
            out(node, t0, t, "barrier_slack")
            return t0, node
        gen, release_msg = span
        rel_t = None
        for cand in reversed(self._release.get(gen, ())):
            if cand <= t:
                rel_t = cand
                break
        if rel_t is None or rel_t < t0:
            out(node, t0, t, "barrier_slack")
            return t0, node
        chain_interval(node, rel_t, t, release_msg, "barrier_slack")
        arr = None
        for cand in reversed(self._arrive.get(gen, ())):
            if cand[0] <= rel_t:
                arr = cand
                break
        if arr is None:
            out(node, t0, rel_t, "barrier_slack")
            return t0, node
        arr_t, last_src, sent_ns, arr_msg, manager = arr
        arr_t = max(arr_t, t0)
        sent_ns = min(max(sent_ns, t0), arr_t)
        # All-arrived to release: nonzero only when a barrier checkpoint
        # deferred the broadcast — fault-tolerance cost.
        out(manager, arr_t, rel_t, "transport_recovery")
        chain_interval(manager, sent_ns, arr_t, arr_msg, "barrier_slack")
        # Jump to the last arriver: its fence + send overhead precede the
        # arrival departure; the path continues on its timeline.
        if 0 <= last_src < self.n_nodes:
            i = bisect_right(self._bar_starts[last_src], sent_ns) - 1
            while i >= 0:
                b0, _b1, g, _rm = self._bars[last_src][i]
                i -= 1
                if g != gen:
                    continue
                if b0 < t:
                    out(last_src, b0, sent_ns, "barrier_slack")
                    return b0, last_src
                break
        out(node, t0, sent_ns, "barrier_slack")
        return t0, node

    # ------------------------------------------------------------------ #
    @staticmethod
    def _package(elapsed_ns, classes, by_node, n_segments) -> dict:
        return {
            "elapsed_ns": elapsed_ns,
            "classes": dict(classes),
            "classes_by_node": [dict(nb) for nb in by_node],
            "n_segments": n_segments,
            "whatif": {
                "barrier": elapsed_ns - classes["barrier_slack"],
                "wire": elapsed_ns - classes["wire"],
                "retransmit": elapsed_ns - classes["transport_recovery"],
            },
        }


def render_critical_path(cp: dict, whatif: str | None = None) -> str:
    """Terminal rendering of a critical-path decomposition."""
    elapsed = cp["elapsed_ns"]
    lines = ["critical path (exact, sums to elapsed):"]
    for cls in COST_CLASSES:
        ns = cp["classes"][cls]
        pct = 100.0 * ns / elapsed if elapsed else 0.0
        lines.append(f"  {cls:<18} {ns / 1e6:10.3f} ms  {pct:5.1f}%")
    lines.append(
        f"  {'total':<18} {elapsed / 1e6:10.3f} ms  "
        f"({cp['n_segments']} segments)"
    )
    knobs = [whatif] if whatif else sorted(cp["whatif"])
    for knob in knobs:
        bound = cp["whatif"][knob]
        gain = elapsed - bound
        pct = 100.0 * gain / elapsed if elapsed else 0.0
        lines.append(
            f"  what-if {knob:<10} >= {bound / 1e6:10.3f} ms "
            f"(saves at most {gain / 1e6:.3f} ms, {pct:.1f}%)"
        )
    return "\n".join(lines)
