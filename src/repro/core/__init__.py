"""The paper's contribution: compiler-orchestrated incoherence.

Pipeline (paper Section 4):

1. ``access``    — read/write/non-owner access-set analysis per parallel
                   loop per processor (Section 4.1), on top of
2. ``symbolic``  — linear expressions in named symbols, and
3. ``sections``  — a regular-section-descriptor algebra (the role Omega
                   played for the authors);
4. ``blocks``    — mapping sections to cache-block ranges and the
                   ``shmem_limits`` block-boundary subsetting (Section 4.2);
5. ``calls``     — the run-time call IR (mk_writable, implicit_writable,
                   send/ready_to_recv, implicit_invalidate, flush);
6. ``planner``   — building the Figure 2 call schedule per loop;
7. ``optimizer`` — bulk transfer + run-time overhead elimination
                   (Section 4.3) and
8. ``pre``       — partial-redundancy elimination of communication
                   (Section 4.3's stated future work, built here);
9. ``contract``  — a static checker that a schedule honours the
                   compiler/protocol contract.
"""

# Only the dependency-free layers are re-exported here: the analysis and
# planning modules import repro.hpf (which itself uses repro.core.symbolic),
# so exposing them from this __init__ would create an import cycle.  Import
# them directly: ``from repro.core.access import analyze_loop`` etc.
from repro.core.sections import Section, StridedInterval, SymSection
from repro.core.symbolic import Env, Lin, Sym

__all__ = [
    "Env",
    "Lin",
    "Section",
    "StridedInterval",
    "Sym",
    "SymSection",
]
