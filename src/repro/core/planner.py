"""Building the per-loop communication plan — the paper's Figure 2.

Given a loop's instantiated access information (:class:`LoopInstance`), the
planner emits the call schedule:

====== =================================================================
stage  ops
====== =================================================================
pre[0]  ``mk_writable`` at every sender (owners of transferred sections)
        --- barrier ---
pre[1]  ``implicit_writable`` at every receiver
        --- barrier ---
pre[2]  ``send_blocks`` at senders; ``ready_to_recv`` at receivers
        (no barrier: the receive semaphore is the synchronization)
loop    executes with zero faults on controlled blocks
post[0] ``implicit_invalidate`` at read-receivers;
        ``flush_and_invalidate`` at non-owner writers;
        ``ready_to_recv`` at flush targets
        --- (the loop-end barrier restores global consistency) ---
====== =================================================================

Only blocks *fully inside* the transferred section are taken under control
(``shmem_limits``); boundary blocks fall back to the default protocol, so
the plan also reports them (they show up as residual misses — the paper's
"edge cases ... that we omit by our shmem_limits call").

Options (the paper's Section 4.3 knobs, evaluated in Figure 4):

``bulk``     coalesce contiguous blocks into multi-block payloads
``rt_elim``  run-time overhead elimination: drop ``mk_writable`` + its
             barrier, memoize ``implicit_writable``, drop
             ``implicit_invalidate``.  Legal only under the whole-program
             assumptions (strictly owner-computes => no write transfers);
             the planner refuses otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.access import LoopInstance
from repro.core.blocks import shmem_limits
from repro.core.calls import (
    CallOp,
    FlushBlocks,
    ImplicitInvalidate,
    ImplicitWritable,
    MkWritable,
    Prefetch,
    ReadyToRecv,
    SelfInvalidate,
    SendBlocks,
)
from repro.tempest.memory import SharedMemory

__all__ = ["CommPlan", "PlanError", "plan_loop"]


class PlanError(ValueError):
    """The requested plan options are illegal for this loop."""


@dataclass
class CommPlan:
    """The planned calls around one parallel loop instance."""

    # Stages; a barrier separates consecutive pre stages.
    pre: list[list[CallOp]] = field(default_factory=list)
    post: list[list[CallOp]] = field(default_factory=list)
    #: blocks under compiler control, per receiving node (for the checker)
    controlled: dict[int, np.ndarray] = field(default_factory=dict)
    #: boundary blocks left to the default protocol, per receiving node
    boundary: dict[int, np.ndarray] = field(default_factory=dict)
    rt_elim: bool = False
    bulk: bool = True

    @property
    def is_empty(self) -> bool:
        return not any(self.pre) and not any(self.post)

    def ops_for(self, node: int, stages: list[list[CallOp]]) -> list[list[CallOp]]:
        """This node's ops per stage (same stage structure)."""
        return [[op for op in stage if op.node == node] for stage in stages]

    def total_controlled_blocks(self) -> int:
        return int(sum(len(b) for b in self.controlled.values()))


def _merge_blocks(per_key: dict, key, blocks: np.ndarray) -> None:
    if len(blocks) == 0:
        return
    prev = per_key.get(key)
    per_key[key] = blocks if prev is None else np.union1d(prev, blocks)


def plan_loop(
    inst: LoopInstance,
    memory: SharedMemory,
    bulk: bool = True,
    rt_elim: bool = False,
    advisory: str | bool = False,
) -> CommPlan:
    """Build the communication plan for one instantiated loop.

    ``advisory`` additionally covers the *boundary* blocks (which stay with
    the default protocol) with advisory primitives — the paper's
    suggested-but-unexplored optimization for pronounced edge effects:

    * ``"prefetch"`` — co-operative prefetch before the loop only;
    * ``"full"`` (or True) — prefetch plus post-loop self-invalidate.

    Measurement note (see bench_ablation_advisory): self-invalidate trades
    the producer's invalidation round trip for a refetch of the block every
    iteration, which loses whenever the boundary data is stable across
    loops — prefetch-only is the safer default.
    """
    plan = CommPlan(rt_elim=rt_elim, bulk=bulk)
    advisory_per_dst: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Resolve transfers to controllable block ranges.
    #
    # Read transfers are merged per *receiver*: the paper subsets the whole
    # non-owner section a(m:n) to block boundaries, then "designates owners
    # to send the relevant blocks".  A block whose elements straddle two
    # owners is assigned to the owner of its first element — legal because
    # that owner's mk_writable recalls every other copy, leaving it with
    # the merged current data (Section 4.2 step 1).  This matters for codes
    # like cg whose per-owner vector chunks are smaller than a block.
    #
    # Write transfers stay per (owner, writer) pair: the flush must return
    # each block to a single owner.
    # ------------------------------------------------------------------ #
    send_pairs: dict[tuple[int, int], np.ndarray] = {}       # read data pushes
    write_pairs: dict[tuple[int, int], np.ndarray] = {}      # owner->writer preloads
    boundary_per_dst: dict[int, np.ndarray] = {}

    has_write_transfers = False
    for t in inst.transfers:
        if t.kind != "write":
            continue
        arr = memory.arrays[t.array]
        inner, edge = shmem_limits(arr, t.section)
        _merge_blocks(boundary_per_dst, t.dst, edge)
        if len(inner):
            has_write_transfers = True
            _merge_blocks(write_pairs, (t.src, t.dst), inner)

    # Read side: subset each receiver's *whole* non-owner section (not the
    # per-owner pieces) so that multi-owner sections keep their full
    # block-aligned core, then pick one sender per block.
    for dst in range(inst.n_procs):
        for aname, sec in inst.non_owner_reads[dst]:
            arr = memory.arrays[aname]
            inner, edge = shmem_limits(arr, sec)
            _merge_blocks(boundary_per_dst, dst, edge)
            if advisory and len(edge):
                owners = arr.owners_of_blocks(edge)
                _merge_blocks(advisory_per_dst, dst, edge[owners != dst])
            if len(inner) == 0:
                continue
            if rt_elim:
                # The rt-elim whole-program assumptions require senders to
                # retain exclusive ownership; a block straddling two owners
                # cannot satisfy that (the co-owner's writes would wipe the
                # memoized receiver tags).  Leave such blocks to the
                # default protocol.
                single = arr.single_owner_blocks(inner)
                _merge_blocks(boundary_per_dst, dst, inner[~single])
                inner = inner[single]
                if len(inner) == 0:
                    continue
            senders = arr.owners_of_blocks(inner)
            for sender in np.unique(senders):
                blocks = inner[senders == sender]
                if sender == dst:
                    # The receiver itself owns the block's first element
                    # (its tail shares the block): default protocol.
                    _merge_blocks(boundary_per_dst, dst, blocks)
                else:
                    _merge_blocks(send_pairs, (int(sender), dst), blocks)

    if rt_elim and has_write_transfers:
        raise PlanError(
            "run-time overhead elimination assumes strictly owner-computes "
            "(no non-owner writes); this loop has write transfers"
        )

    if not send_pairs and not write_pairs:
        plan.boundary = boundary_per_dst
        _append_advisory(plan, advisory_per_dst, advisory)
        return plan

    # ------------------------------------------------------------------ #
    # Stage: mk_writable at senders (merged over all their destinations).
    # ------------------------------------------------------------------ #
    sender_blocks: dict[int, np.ndarray] = {}
    for (src, _dst), blocks in list(send_pairs.items()) + list(write_pairs.items()):
        _merge_blocks(sender_blocks, src, blocks)

    if not rt_elim:
        plan.pre.append(
            [
                MkWritable(node, tuple(blocks.tolist()))
                for node, blocks in sorted(sender_blocks.items())
            ]
        )

    # ------------------------------------------------------------------ #
    # Stage: implicit_writable at receivers.
    # ------------------------------------------------------------------ #
    recv_blocks: dict[int, np.ndarray] = {}
    for (_src, dst), blocks in list(send_pairs.items()) + list(write_pairs.items()):
        _merge_blocks(recv_blocks, dst, blocks)

    iw_stage: list[CallOp] = []
    for node, blocks in sorted(recv_blocks.items()):
        t = tuple(blocks.tolist())
        memo = (t[0], len(t)) if rt_elim else None
        iw_stage.append(ImplicitWritable(node, t, memo))
    plan.pre.append(iw_stage)

    # ------------------------------------------------------------------ #
    # Stage: sends + ready_to_recv.
    # ------------------------------------------------------------------ #
    xfer_stage: list[CallOp] = []
    expected: dict[int, int] = {}
    for (src, dst), blocks in sorted(send_pairs.items()):
        xfer_stage.append(SendBlocks(src, tuple(blocks.tolist()), dst, bulk, "read"))
        expected[dst] = expected.get(dst, 0) + len(blocks)
    for (src, dst), blocks in sorted(write_pairs.items()):
        xfer_stage.append(SendBlocks(src, tuple(blocks.tolist()), dst, bulk, "write"))
        expected[dst] = expected.get(dst, 0) + len(blocks)
    for node, count in sorted(expected.items()):
        xfer_stage.append(ReadyToRecv(node, count))
    plan.pre.append(xfer_stage)

    # ------------------------------------------------------------------ #
    # Post stage: invalidate read copies; flush non-owner writes home.
    # ------------------------------------------------------------------ #
    post: list[CallOp] = []
    if not rt_elim:
        read_recv: dict[int, np.ndarray] = {}
        for (_src, dst), blocks in send_pairs.items():
            _merge_blocks(read_recv, dst, blocks)
        for node, blocks in sorted(read_recv.items()):
            post.append(ImplicitInvalidate(node, tuple(blocks.tolist())))
    flush_expected: dict[int, int] = {}
    for (owner, writer), blocks in sorted(write_pairs.items()):
        post.append(FlushBlocks(writer, tuple(blocks.tolist()), owner, bulk))
        flush_expected[owner] = flush_expected.get(owner, 0) + len(blocks)
    for node, count in sorted(flush_expected.items()):
        post.append(ReadyToRecv(node, count))
    if post:
        plan.post.append(post)

    plan.controlled = recv_blocks
    # A block can land in both sets when overlapping sections of different
    # halo offsets cover it differently (fully by one, partially by
    # another).  Compiler control wins: the push keeps the receiver
    # current, so the block needs no default-protocol handling.
    plan.boundary = {
        dst: (
            np.setdiff1d(edge, recv_blocks[dst], assume_unique=True)
            if dst in recv_blocks
            else edge
        )
        for dst, edge in boundary_per_dst.items()
    }
    if advisory:
        advisory_per_dst = {
            dst: (
                np.setdiff1d(blocks, recv_blocks[dst], assume_unique=True)
                if dst in recv_blocks
                else blocks
            )
            for dst, blocks in advisory_per_dst.items()
        }
        advisory_per_dst = {d: b for d, b in advisory_per_dst.items() if len(b)}
    _append_advisory(plan, advisory_per_dst, advisory)
    return plan


def _append_advisory(
    plan: CommPlan, advisory_per_dst: dict, mode: str | bool
) -> None:
    """Cover boundary blocks with prefetch (and optionally self-inv)."""
    if not advisory_per_dst:
        return
    if not plan.pre:
        plan.pre.append([])
    for node, blocks in sorted(advisory_per_dst.items()):
        plan.pre[-1].append(Prefetch(node, tuple(blocks.tolist())))
    if mode is True or mode == "full":
        if not plan.post:
            plan.post.append([])
        for node, blocks in sorted(advisory_per_dst.items()):
            plan.post[-1].append(SelfInvalidate(node, tuple(blocks.tolist())))
