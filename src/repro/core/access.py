"""Access-set analysis — the paper's Section 4.1.

For each parallel loop and each processor ``p`` we compute:

* the iterations ``p`` executes (owner-computes over the home reference),
* the array sections ``p`` reads and writes,
* the **non-owner-read** and **non-owner-write** sets — the set difference
  of what ``p`` accesses and what ``p`` owns — and
* the pairwise :class:`Transfer` list: which owner must supply which
  section to which accessor.

Everything is *parametric* in problem symbols and enclosing sequential
loop variables (an :class:`LoopAccess` holds symbolic patterns), and is
instantiated against a concrete environment at run time —
:meth:`LoopAccess.instantiate` is memoized since time-step loops replay the
same environment every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sections import Section, StridedInterval
from repro.core.symbolic import Env, Lin
from repro.hpf.ast import (
    ArrayDecl,
    At,
    LoopIdx,
    ParallelAssign,
    Program,
    Reduce,
    Ref,
    Slice,
)
from repro.hpf.lowering import IterSpec, distribution_of, iteration_spec

__all__ = ["LoopAccess", "LoopInstance", "RefPattern", "Transfer", "analyze_loop"]


# ===================================================================== #
# parametric per-reference access patterns
# ===================================================================== #
@dataclass(frozen=True)
class RefPattern:
    """How one reference touches its array, as a function of the iteration
    set: last-dimension columns are the iterations shifted (``shift``), a
    single absolute column (``point``), or an absolute range (``slice``)."""

    array: str
    inner: tuple[tuple[Lin, Lin], ...]
    kind: str                      # 'shift' | 'point' | 'slice'
    a: Lin = Lin(0)                # shift offset / point index / slice lo
    b: Lin = Lin(0)                # slice hi

    @staticmethod
    def from_ref(ref: Ref, decl: ArrayDecl) -> "RefPattern":
        inner = []
        for sub in ref.inner:
            if isinstance(sub, Slice):
                inner.append((sub.lo, sub.hi))
            elif isinstance(sub, At):
                inner.append((sub.index, sub.index))
            else:  # pragma: no cover - rejected by AST validation
                raise ValueError("LoopIdx cannot appear in an inner dimension")
        last = ref.last
        if isinstance(last, LoopIdx):
            return RefPattern(ref.array, tuple(inner), "shift", last.offset)
        if isinstance(last, At):
            return RefPattern(ref.array, tuple(inner), "point", last.index)
        return RefPattern(ref.array, tuple(inner), "slice", last.lo, last.hi)

    def columns(self, iters: StridedInterval, env: Env) -> StridedInterval:
        """Last-dim indices touched when executing ``iters``."""
        if iters.is_empty:
            return StridedInterval.empty()
        if self.kind == "shift":
            return iters.shift(self.a.eval(env))
        if self.kind == "point":
            v = self.a.eval(env)
            return StridedInterval.point(v)
        return StridedInterval(self.a.eval(env), self.b.eval(env))

    def section(self, iters: StridedInterval, env: Env) -> Section:
        inner = tuple((lo.eval(env), hi.eval(env)) for lo, hi in self.inner)
        return Section(inner, self.columns(iters, env))


# ===================================================================== #
# transfers
# ===================================================================== #
@dataclass(frozen=True)
class Transfer:
    """One producer→consumer section movement required by a loop.

    ``kind == 'read'``: ``dst`` reads data owned by ``src`` (the classic
    producer/consumer case — owner sends before the loop).
    ``kind == 'write'``: ``dst`` will *write* data owned by ``src``; the
    owner sends the blocks before the loop and receives a flush after it.
    """

    array: str
    section: Section
    src: int
    dst: int
    kind: str  # 'read' | 'write'

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad transfer kind {self.kind!r}")
        if self.src == self.dst:
            raise ValueError("transfer between a node and itself")


# ===================================================================== #
# per-loop analysis results
# ===================================================================== #
@dataclass
class LoopInstance:
    """Concrete (environment-bound) access information for one loop."""

    n_procs: int
    iterations: tuple[StridedInterval, ...]
    # per proc: list of (array, Section)
    reads: tuple[tuple[tuple[str, Section], ...], ...]
    writes: tuple[tuple[tuple[str, Section], ...], ...]
    non_owner_reads: tuple[tuple[tuple[str, Section], ...], ...]
    non_owner_writes: tuple[tuple[tuple[str, Section], ...], ...]
    transfers: tuple[Transfer, ...]


@dataclass
class LoopAccess:
    """Parametric analysis of one parallel statement."""

    stmt: ParallelAssign | Reduce
    n_procs: int
    iter_spec: IterSpec | None            # None for single-owner statements
    single_owner_col: Lin | None
    lhs_pattern: RefPattern | None        # None for reductions
    read_patterns: tuple[RefPattern, ...]
    decls: dict[str, ArrayDecl]
    _cache: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def owned_columns(self, array: str, proc: int) -> StridedInterval:
        decl = self.decls[array]
        if decl.dist == "replicated":
            return StridedInterval(0, decl.extent - 1)
        dist = distribution_of(decl, self.n_procs)
        return StridedInterval.from_range(dist.owned_indices(proc, decl.extent))

    def _iterations(self, env: Env) -> tuple[StridedInterval, ...]:
        if self.iter_spec is not None:
            return tuple(
                self.iter_spec.iterations(p, env) for p in range(self.n_procs)
            )
        # Single-owner: the owner "iterates" exactly once; others are idle.
        col = self.single_owner_col.eval(env)  # type: ignore[union-attr]
        assert self.lhs_pattern is not None
        decl = self.decls[self.lhs_pattern.array]
        owner = distribution_of(decl, self.n_procs).owner(col, decl.extent)
        return tuple(
            StridedInterval.point(col) if p == owner else StridedInterval.empty()
            for p in range(self.n_procs)
        )

    # ------------------------------------------------------------------ #
    def instantiate(self, env: Env) -> LoopInstance:
        """Bind the environment; memoized on the used symbol values."""
        key = tuple(sorted((k, env[k]) for k in self._used_symbols() if k in env))
        hit = self._cache.get(key)
        if hit is not None:
            return hit

        iters = self._iterations(env)
        reads: list[tuple[tuple[str, Section], ...]] = []
        writes: list[tuple[tuple[str, Section], ...]] = []
        nor: list[tuple[tuple[str, Section], ...]] = []
        now_: list[tuple[tuple[str, Section], ...]] = []
        transfers: list[Transfer] = []

        for p in range(self.n_procs):
            it = iters[p]
            p_reads = []
            p_writes = []
            p_nor = []
            p_now = []
            if not it.is_empty:
                for pat in self.read_patterns:
                    sec = pat.section(it, env)
                    if sec.is_empty:
                        continue
                    p_reads.append((pat.array, sec))
                    if self.decls[pat.array].dist != "replicated":
                        owned = self.owned_columns(pat.array, p)
                        for piece in sec.difference_last(owned):
                            p_nor.append((pat.array, piece))
                            transfers.extend(
                                self._split_by_owner(pat.array, piece, p, "read")
                            )
                if self.lhs_pattern is not None:
                    wsec = self.lhs_pattern.section(it, env)
                    if not wsec.is_empty:
                        p_writes.append((self.lhs_pattern.array, wsec))
                        if self.decls[self.lhs_pattern.array].dist != "replicated":
                            owned = self.owned_columns(self.lhs_pattern.array, p)
                            for piece in wsec.difference_last(owned):
                                p_now.append((self.lhs_pattern.array, piece))
                                transfers.extend(
                                    self._split_by_owner(
                                        self.lhs_pattern.array, piece, p, "write"
                                    )
                                )
            reads.append(tuple(p_reads))
            writes.append(tuple(p_writes))
            nor.append(tuple(p_nor))
            now_.append(tuple(p_now))

        inst = LoopInstance(
            self.n_procs,
            iters,
            tuple(reads),
            tuple(writes),
            tuple(nor),
            tuple(now_),
            tuple(transfers),
        )
        self._cache[key] = inst
        return inst

    def _split_by_owner(
        self, array: str, piece: Section, accessor: int, kind: str
    ) -> list[Transfer]:
        """Split a non-owner section piece by its owning processors."""
        out = []
        for q in range(self.n_procs):
            if q == accessor:
                continue
            part = piece.intersect_last(self.owned_columns(array, q))
            if not part.is_empty:
                if kind == "read":
                    out.append(Transfer(array, part, src=q, dst=accessor, kind="read"))
                else:
                    out.append(Transfer(array, part, src=q, dst=accessor, kind="write"))
        return out

    def _used_symbols(self) -> frozenset[str]:
        syms: set[str] = set()
        for pat in self.read_patterns + ((self.lhs_pattern,) if self.lhs_pattern else ()):
            syms |= pat.a.symbols() | pat.b.symbols()
            for lo, hi in pat.inner:
                syms |= lo.symbols() | hi.symbols()
        if self.iter_spec is not None:
            syms |= (
                self.iter_spec.lo.symbols()
                | self.iter_spec.hi.symbols()
                | self.iter_spec.offset.symbols()
            )
        if self.single_owner_col is not None:
            syms |= self.single_owner_col.symbols()
        return frozenset(syms)


# ===================================================================== #
def analyze_loop(
    stmt: ParallelAssign | Reduce, program: Program, n_procs: int
) -> LoopAccess:
    """Compute the parametric access information for one statement."""
    decls = program.arrays
    if isinstance(stmt, ParallelAssign):
        lhs_pat = RefPattern.from_ref(stmt.lhs, decls[stmt.lhs.array])
        read_pats = tuple(
            RefPattern.from_ref(r, decls[r.array]) for r in stmt.rhs.refs()
        )
        if isinstance(stmt.home_ref.last, At):
            return LoopAccess(
                stmt,
                n_procs,
                iter_spec=None,
                single_owner_col=stmt.lhs.last.index,  # type: ignore[union-attr]
                lhs_pattern=lhs_pat,
                read_patterns=read_pats,
                decls=decls,
            )
        spec = iteration_spec(stmt, decls[stmt.home_ref.array], n_procs)
        return LoopAccess(
            stmt,
            n_procs,
            iter_spec=spec,
            single_owner_col=None,
            lhs_pattern=lhs_pat,
            read_patterns=read_pats,
            decls=decls,
        )

    # Reduction: distribute over the first loop-indexed reference.
    read_pats = tuple(RefPattern.from_ref(r, decls[r.array]) for r in stmt.rhs.refs())
    home = None
    for ref in stmt.rhs.refs():
        if isinstance(ref.last, LoopIdx) and decls[ref.array].dist != "replicated":
            home = ref
            break
    if home is None:
        raise ValueError(
            f"reduction {stmt.label!r} has no distributed loop-indexed reference"
        )
    home_decl = decls[home.array]
    dist = distribution_of(home_decl, n_procs)
    owned = tuple(
        StridedInterval.from_range(dist.owned_indices(p, home_decl.extent))
        for p in range(n_procs)
    )
    assert isinstance(home.last, LoopIdx)
    spec = IterSpec(owned, home.last.offset, stmt.loop.lo, stmt.loop.hi, stmt.loop.step)
    return LoopAccess(
        stmt,
        n_procs,
        iter_spec=spec,
        single_owner_col=None,
        lhs_pattern=None,
        read_patterns=read_pats,
        decls=decls,
    )
