"""IR of the run-time calls the compiler inserts around parallel loops.

Each op names the node that executes it plus its operands; ops are grouped
into *stages*, with barrier synchronization between stages (the plan's
structure encodes the ordering requirements of paper Section 4.2).  The
executor lowers each op onto the corresponding
:class:`~repro.tempest.extensions.CompilerExtensions` primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "CallOp",
    "FlushBlocks",
    "ImplicitInvalidate",
    "ImplicitWritable",
    "MkWritable",
    "Prefetch",
    "ReadyToRecv",
    "SelfInvalidate",
    "SendBlocks",
]


@dataclass(frozen=True)
class MkWritable:
    """Bring ``blocks`` writable (pipelined upgrades) at ``node``."""

    node: int
    blocks: tuple[int, ...]


@dataclass(frozen=True)
class ImplicitWritable:
    """Locally set ``blocks`` ReadWrite at ``node`` without telling the
    directory.  ``memo_key`` enables the rt-elim constant-time fast path."""

    node: int
    blocks: tuple[int, ...]
    memo_key: tuple[int, int] | None = None


@dataclass(frozen=True)
class SendBlocks:
    """``node`` ships ``blocks`` to ``dst`` as tagged data messages.

    ``purpose`` distinguishes a producer→consumer push (``"read"``) from an
    owner→writer preload before a non-owner write (``"write"``); the PRE
    pass may elide only the former.
    """

    node: int
    blocks: tuple[int, ...]
    dst: int
    bulk: bool = True
    purpose: str = "read"


@dataclass(frozen=True)
class ReadyToRecv:
    """``node`` blocks until ``count`` pushed blocks have arrived."""

    node: int
    count: int


@dataclass(frozen=True)
class ImplicitInvalidate:
    """``node`` drops its compiler-controlled copies of ``blocks``."""

    node: int
    blocks: tuple[int, ...]


@dataclass(frozen=True)
class FlushBlocks:
    """Non-owner-write epilogue: ``node`` returns ``blocks`` to ``owner``
    and invalidates them locally."""

    node: int
    blocks: tuple[int, ...]
    owner: int
    bulk: bool = True


@dataclass(frozen=True)
class Prefetch:
    """Advisory: ``node`` issues pipelined read transactions for boundary
    ``blocks`` it is about to demand-read (paper Section 4.2's suggested
    co-operative prefetch)."""

    node: int
    blocks: tuple[int, ...]


@dataclass(frozen=True)
class SelfInvalidate:
    """Advisory: ``node`` drops its read-only boundary copies and notifies
    the homes off the critical path, sparing the next writer the
    invalidation round trip."""

    node: int
    blocks: tuple[int, ...]


CallOp = Union[
    MkWritable,
    ImplicitWritable,
    SendBlocks,
    ReadyToRecv,
    ImplicitInvalidate,
    FlushBlocks,
    Prefetch,
    SelfInvalidate,
]
