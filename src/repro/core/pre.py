"""Partial-redundancy elimination of communication (paper Section 4.3).

The paper identifies two PRE-shaped overheads and built neither (it was
"future work... we intend to incorporate PRE based analysis"); this module
implements the data-availability half:

    "If there is no intervening write to the same non-owner read data
    between two loops, it need not be re-communicated at the second loop."

The formulation is the classic *available expressions* lattice specialized
to (receiver, block) facts, evaluated over the program's dynamic phase
sequence (which is static for our programs — the same deferred-evaluation
stance the planner takes):

* a compiler send of block ``b`` to node ``p`` **generates** availability
  of ``(p, b)``;
* any write to ``b`` (by anyone) **kills** ``(*, b)`` except at the writer;
* a send whose blocks are all available is **redundant** — it is dropped,
  and crucially the matching ``implicit_invalidate`` at the receiver is
  suppressed so the copy actually survives to the next loop (the paper's
  point that the optimized scheme would otherwise be *worse* than the
  default protocol on stable data, which never re-fetches an uninvalidated
  block).

At the end of the controlled region every retained block is invalidated so
global consistency is restored before control returns to the default
protocol.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AvailabilityTracker"]


class AvailabilityTracker:
    """Tracks which (receiver, block) pairs hold current pushed copies."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._avail: list[set[int]] = [set() for _ in range(n_nodes)]
        self.sends_elided = 0
        self.blocks_elided = 0

    # ------------------------------------------------------------------ #
    def filter_send(self, dst: int, blocks: np.ndarray | list[int]) -> np.ndarray:
        """Drop already-available blocks from a planned send; records the
        remainder as available at ``dst``.  Returns the blocks still to send."""
        blocks = np.asarray(blocks, dtype=np.int64)
        avail = self._avail[dst]
        mask = np.fromiter((b not in avail for b in blocks.tolist()), dtype=bool, count=len(blocks))
        fresh = blocks[mask]
        self.blocks_elided += int(len(blocks) - len(fresh))
        if len(fresh) == 0 and len(blocks) > 0:
            self.sends_elided += 1
        avail.update(fresh.tolist())
        return fresh

    def note_writes(self, writer: int, blocks: np.ndarray | list[int]) -> None:
        """A write kills availability everywhere except at the writer."""
        blocks = set(np.asarray(blocks, dtype=np.int64).tolist())
        for node in range(self.n_nodes):
            if node != writer:
                self._avail[node] -= blocks

    def retained(self, node: int) -> set[int]:
        """Blocks node currently keeps under compiler control."""
        return set(self._avail[node])

    def should_invalidate(self, node: int, blocks: np.ndarray | list[int]) -> np.ndarray:
        """Of a planned invalidation, which blocks must actually be dropped
        right now?  Under PRE: none — copies are retained; the cleanup pass
        at region end uses :meth:`drain`."""
        _ = node, blocks
        return np.empty(0, dtype=np.int64)

    def drop(self, node: int, blocks) -> None:
        """Forget availability of specific blocks at ``node`` (used when a
        retained copy must be invalidated for a demand-read conflict)."""
        self._avail[node] -= set(np.asarray(blocks, dtype=np.int64).tolist())

    def drain(self, node: int) -> np.ndarray:
        """Region end: all retained blocks at ``node``, cleared."""
        blocks = np.asarray(sorted(self._avail[node]), dtype=np.int64)
        self._avail[node].clear()
        return blocks

    def stats(self) -> dict:
        return {
            "sends_elided": self.sends_elided,
            "blocks_elided": self.blocks_elided,
            "live_blocks": sum(len(s) for s in self._avail),
        }
