"""Regular section descriptors: strided rectangular array sections.

The paper used the Omega library "to avoid the significant implementation
effort required to build a robust RSD package"; we build the RSD package.
The sections it must represent (paper Section 4.1) are:

* contiguous ranges of the distributed last dimension, possibly strided
  (CYCLIC ownership), and
* full or shifted rectangles over the inner (non-distributed) dimensions
  ("two-dimensional sections, represented as contiguous ranges separated by
  a fixed stride").

:class:`StridedInterval` is the 1-D building block — a finite arithmetic
progression ``{lo, lo+step, ..., <=hi}`` with exact intersection (via CRT)
and difference.  :class:`Section` combines one strided interval for the
last dimension with plain intervals for the inner dimensions.

Bounds here are **concrete integers**; parametric sections (symbolic bounds
in problem size / sequential loop variables) live in
:class:`SymSection`, which instantiates to a :class:`Section` once the
runtime knows the bindings — mirroring the paper's deferred evaluation of
Omega-generated code fragments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.symbolic import Env, Lin, LinLike, as_lin

__all__ = ["Section", "StridedInterval", "SymSection", "EMPTY"]


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended gcd: returns (g, x, y) with a*x + b*y == g."""
    if b == 0:
        return a, 1, 0
    g, x, y = _egcd(b, a % b)
    return g, y, x - (a // b) * y


@dataclass(frozen=True)
class StridedInterval:
    """The arithmetic progression ``lo, lo+step, ..., last`` (inclusive).

    Normalized on construction: ``hi`` is snapped down to the last actual
    member; an empty progression is canonically ``(0, -1, 1)``.
    """

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.hi < self.lo:
            object.__setattr__(self, "lo", 0)
            object.__setattr__(self, "hi", -1)
            object.__setattr__(self, "step", 1)
        else:
            # Snap hi to the last member of the progression.
            object.__setattr__(
                self, "hi", self.lo + (self.hi - self.lo) // self.step * self.step
            )
            if self.lo == self.hi:
                object.__setattr__(self, "step", 1)

    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "StridedInterval":
        return StridedInterval(0, -1, 1)

    @staticmethod
    def point(v: int) -> "StridedInterval":
        return StridedInterval(v, v, 1)

    @staticmethod
    def from_range(r: range) -> "StridedInterval":
        if len(r) == 0:
            return StridedInterval.empty()
        if r.step < 1:
            raise ValueError("only ascending ranges are supported")
        return StridedInterval(r.start, r[-1], r.step)

    @property
    def is_empty(self) -> bool:
        return self.hi < self.lo

    def __len__(self) -> int:
        if self.is_empty:
            return 0
        return (self.hi - self.lo) // self.step + 1

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1, self.step))

    def __contains__(self, v: int) -> bool:
        return (
            not self.is_empty
            and self.lo <= v <= self.hi
            and (v - self.lo) % self.step == 0
        )

    @property
    def is_contiguous(self) -> bool:
        return self.step == 1 or len(self) <= 1

    # ------------------------------------------------------------------ #
    def shift(self, delta: int) -> "StridedInterval":
        if self.is_empty:
            return self
        return StridedInterval(self.lo + delta, self.hi + delta, self.step)

    def scale(self, k: int) -> "StridedInterval":
        """Image under ``x -> k*x`` (k >= 1)."""
        if k < 1:
            raise ValueError("scale factor must be >= 1")
        if self.is_empty:
            return self
        return StridedInterval(self.lo * k, self.hi * k, self.step * k)

    def clip(self, lo: int, hi: int) -> "StridedInterval":
        """Restrict to [lo, hi] (inclusive)."""
        if self.is_empty or hi < lo:
            return StridedInterval.empty()
        new_lo = self.lo
        if lo > new_lo:
            # First member >= lo.
            k = math.ceil((lo - self.lo) / self.step)
            new_lo = self.lo + k * self.step
        new_hi = min(self.hi, hi)
        return StridedInterval(new_lo, new_hi, self.step)

    def intersect(self, other: "StridedInterval") -> "StridedInterval":
        """Exact intersection of two arithmetic progressions (CRT)."""
        if self.is_empty or other.is_empty:
            return StridedInterval.empty()
        a, s = self.lo, self.step
        b, t = other.lo, other.step
        g, x, _ = _egcd(s, t)
        if (b - a) % g != 0:
            return StridedInterval.empty()
        lcm = s // g * t
        # One solution: a + s * x * ((b - a) // g), then normalize mod lcm.
        sol = a + s * x * ((b - a) // g)
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo:
            return StridedInterval.empty()
        sol = sol + ((lo - sol) + lcm - 1) // lcm * lcm if sol < lo else sol - (sol - lo) // lcm * lcm
        if sol > hi:
            return StridedInterval.empty()
        return StridedInterval(sol, hi, lcm)

    def difference(self, other: "StridedInterval") -> list["StridedInterval"]:
        """``self \\ other`` as a small list of strided intervals.

        Exact for the cases the analysis produces (contiguous minus
        contiguous; equal-stride congruent progressions); falls back to an
        element-wise decomposition into runs otherwise.
        """
        if self.is_empty:
            return []
        hit = self.intersect(other)
        if hit.is_empty:
            return [self]
        if self.step == hit.step:
            # Congruent: remove a contiguous (in progression space) chunk.
            out = []
            if hit.lo > self.lo:
                out.append(StridedInterval(self.lo, hit.lo - self.step, self.step))
            if hit.hi < self.hi:
                out.append(StridedInterval(hit.hi + self.step, self.hi, self.step))
            return out
        # General case: enumerate and re-coalesce into maximal runs.
        keep = [v for v in self if v not in hit]
        return coalesce_points(keep)

    def __repr__(self) -> str:
        if self.is_empty:
            return "SI[]"
        if self.step == 1:
            return f"SI[{self.lo}:{self.hi}]"
        return f"SI[{self.lo}:{self.hi}:{self.step}]"


EMPTY = StridedInterval.empty()


def coalesce_points(points: Sequence[int]) -> list[StridedInterval]:
    """Pack sorted distinct integers into maximal equal-stride runs."""
    out: list[StridedInterval] = []
    i = 0
    n = len(points)
    while i < n:
        if i + 1 == n:
            out.append(StridedInterval.point(points[i]))
            break
        step = points[i + 1] - points[i]
        j = i + 1
        while j + 1 < n and points[j + 1] - points[j] == step:
            j += 1
        out.append(StridedInterval(points[i], points[j], step))
        i = j + 1
    return out


@dataclass(frozen=True)
class Section:
    """A rectangular array section: inner dims × a strided last dim.

    ``inner`` holds inclusive ``(lo, hi)`` pairs for every dimension except
    the last; ``last`` is the distributed dimension's strided interval.
    A 1-D array section has ``inner == ()``.
    """

    inner: tuple[tuple[int, int], ...]
    last: StridedInterval

    def __post_init__(self) -> None:
        for lo, hi in self.inner:
            if hi < lo:
                object.__setattr__(self, "last", StridedInterval.empty())
                break

    # ------------------------------------------------------------------ #
    @staticmethod
    def of(inner: Sequence[tuple[int, int]], last: StridedInterval) -> "Section":
        return Section(tuple(inner), last)

    @staticmethod
    def empty(rank: int = 1) -> "Section":
        return Section(tuple((0, -1) for _ in range(rank - 1)), StridedInterval.empty())

    @property
    def rank(self) -> int:
        return len(self.inner) + 1

    @property
    def is_empty(self) -> bool:
        return self.last.is_empty or any(hi < lo for lo, hi in self.inner)

    def count(self) -> int:
        if self.is_empty:
            return 0
        total = len(self.last)
        for lo, hi in self.inner:
            total *= hi - lo + 1
        return total

    def columns(self) -> Iterator[int]:
        """Last-dimension indices in the section."""
        return iter(self.last)

    def inner_count(self) -> int:
        """Elements per column."""
        if self.is_empty:
            return 0
        total = 1
        for lo, hi in self.inner:
            total *= hi - lo + 1
        return total

    # ------------------------------------------------------------------ #
    def intersect(self, other: "Section") -> "Section":
        if self.rank != other.rank:
            raise ValueError(f"rank mismatch: {self.rank} vs {other.rank}")
        inner = tuple(
            (max(a_lo, b_lo), min(a_hi, b_hi))
            for (a_lo, a_hi), (b_lo, b_hi) in zip(self.inner, other.inner)
        )
        return Section(inner, self.last.intersect(other.last))

    def intersect_last(self, interval: StridedInterval) -> "Section":
        return Section(self.inner, self.last.intersect(interval))

    def difference_last(self, interval: StridedInterval) -> list["Section"]:
        """``self`` minus the columns of ``interval`` (inner dims kept).

        This is the operation the access analysis needs: the non-owner set
        is the read/write section minus the *owned columns*.
        """
        return [
            Section(self.inner, piece)
            for piece in self.last.difference(interval)
            if not piece.is_empty
        ]

    def covers(self, other: "Section") -> bool:
        """True if every element of ``other`` is in ``self``."""
        if other.is_empty:
            return True
        if self.is_empty or self.rank != other.rank:
            return False
        for (a_lo, a_hi), (b_lo, b_hi) in zip(self.inner, other.inner):
            if b_lo < a_lo or b_hi > a_hi:
                return False
        # Every member of other.last must be a member of self.last.
        hit = other.last.intersect(self.last)
        return not hit.is_empty and len(hit) == len(other.last) and hit.step == other.last.step and hit.lo == other.last.lo

    def __repr__(self) -> str:
        dims = ", ".join(f"{lo}:{hi}" for lo, hi in self.inner)
        sep = ", " if dims else ""
        return f"Section({dims}{sep}{self.last!r})"


@dataclass(frozen=True)
class SymSection:
    """A section with symbolic (affine) bounds, instantiated at run time.

    ``inner`` pairs and the last-dimension bounds may be :class:`Lin`
    expressions in problem-size symbols or enclosing sequential loop
    variables; ``step`` stays a concrete integer (ownership strides are
    known at compile time).
    """

    inner: tuple[tuple[Lin, Lin], ...]
    last_lo: Lin
    last_hi: Lin
    last_step: int = 1

    @staticmethod
    def of(
        inner: Sequence[tuple[LinLike, LinLike]],
        last_lo: LinLike,
        last_hi: LinLike,
        last_step: int = 1,
    ) -> "SymSection":
        return SymSection(
            tuple((as_lin(lo), as_lin(hi)) for lo, hi in inner),
            as_lin(last_lo),
            as_lin(last_hi),
            last_step,
        )

    def instantiate(self, env: Env) -> Section:
        inner = tuple((lo.eval(env), hi.eval(env)) for lo, hi in self.inner)
        return Section(
            inner,
            StridedInterval(self.last_lo.eval(env), self.last_hi.eval(env), self.last_step),
        )

    def symbols(self) -> frozenset[str]:
        syms: set[str] = set()
        for lo, hi in self.inner:
            syms |= lo.symbols() | hi.symbols()
        return frozenset(syms | self.last_lo.symbols() | self.last_hi.symbols())
