"""Static verification of the compiler/protocol contract.

The run-time extensions already enforce the contract dynamically (a data
message arriving at an unprepared node raises), but planner bugs are far
cheaper to catch *before* simulation.  ``check_plan`` validates a
:class:`~repro.core.planner.CommPlan` against the rules of paper
Section 4.2:

1. every ``SendBlocks`` has a matching ``ImplicitWritable`` at the
   destination in an *earlier* stage (a barrier lies between stages), or
   the destination retains control from a previous plan (PRE mode);
2. every ``SendBlocks``/``FlushBlocks`` source prepared the blocks with
   ``MkWritable`` (or the plan declares the rt-elim whole-program
   assumptions);
3. receivers post ``ready_to_recv`` for exactly the number of blocks sent
   to them;
4. after the loop, every read-controlled block is invalidated
   (``ImplicitInvalidate``) unless rt-elim or PRE retention applies, and
   every write-controlled block is flushed to its owner;
5. ``MkWritable``/``ImplicitWritable`` never target the same block at two
   nodes in the same stage in conflicting roles.
"""

from __future__ import annotations

from repro.core.calls import (
    FlushBlocks,
    ImplicitInvalidate,
    ImplicitWritable,
    MkWritable,
    ReadyToRecv,
    SendBlocks,
)
from repro.core.planner import CommPlan

__all__ = ["ContractError", "check_plan"]


class ContractError(AssertionError):
    """A plan violates the compiler/protocol contract."""


def check_plan(
    plan: CommPlan,
    retained: dict[int, set[int]] | None = None,
) -> None:
    """Raise :class:`ContractError` on any contract violation.

    ``retained`` maps node -> blocks still under that node's control from
    earlier plans (the PRE case); sends to retained blocks need no fresh
    ``implicit_writable``.
    """
    retained = retained or {}

    # Collect per-stage facts.
    prepared_recv: dict[int, set[int]] = {n: set(b) for n, b in retained.items()}
    prepared_send: dict[int, set[int]] = {}
    stage_of_iw: dict[int, int] = {}
    sends: list[tuple[int, SendBlocks]] = []
    recv_counts: dict[int, int] = {}

    for stage_idx, stage in enumerate(plan.pre):
        for op in stage:
            if isinstance(op, MkWritable):
                prepared_send.setdefault(op.node, set()).update(op.blocks)
                stage_of_iw.setdefault(op.node, stage_idx)
            elif isinstance(op, ImplicitWritable):
                prepared_recv.setdefault(op.node, set()).update(op.blocks)
                stage_of_iw[op.node] = stage_idx
            elif isinstance(op, SendBlocks):
                sends.append((stage_idx, op))
            elif isinstance(op, ReadyToRecv):
                recv_counts[op.node] = recv_counts.get(op.node, 0) + op.count

    # Rule 1 + barrier ordering: receiver prepared in a strictly earlier
    # stage than the send (stages are barrier-separated).
    sent_to: dict[int, int] = {}
    for stage_idx, send in sends:
        missing = set(send.blocks) - prepared_recv.get(send.dst, set())
        if missing:
            raise ContractError(
                f"send {send.node}->{send.dst}: blocks {sorted(missing)[:4]} "
                "were never made implicit_writable at the destination"
            )
        iw_stage = stage_of_iw.get(send.dst)
        fresh = set(send.blocks) - {
            b for b in send.blocks if b in retained.get(send.dst, set())
        }
        if fresh and iw_stage is not None and iw_stage >= stage_idx:
            raise ContractError(
                f"send {send.node}->{send.dst} in stage {stage_idx} is not "
                f"barrier-separated from implicit_writable in stage {iw_stage}"
            )
        # Rule 2.
        if not plan.rt_elim:
            missing_src = set(send.blocks) - prepared_send.get(send.node, set())
            if missing_src:
                raise ContractError(
                    f"sender {send.node} never ran mk_writable on blocks "
                    f"{sorted(missing_src)[:4]}"
                )
        sent_to[send.dst] = sent_to.get(send.dst, 0) + len(send.blocks)

    # Rule 3.
    for dst, n_sent in sent_to.items():
        if recv_counts.get(dst, 0) != n_sent:
            raise ContractError(
                f"node {dst} expects {recv_counts.get(dst, 0)} blocks but "
                f"{n_sent} are sent to it"
            )
    for dst, n_recv in recv_counts.items():
        if sent_to.get(dst, 0) != n_recv:
            raise ContractError(
                f"node {dst} waits for {n_recv} blocks but only "
                f"{sent_to.get(dst, 0)} are sent"
            )

    # Rule 4: post-loop restoration.
    if not plan.rt_elim:
        invalidated: dict[int, set[int]] = {}
        flushed: dict[int, set[int]] = {}
        for stage in plan.post:
            for op in stage:
                if isinstance(op, ImplicitInvalidate):
                    invalidated.setdefault(op.node, set()).update(op.blocks)
                elif isinstance(op, FlushBlocks):
                    flushed.setdefault(op.node, set()).update(op.blocks)
        for _stage_idx, send in sends:
            keep = retained.get(send.dst, set())
            uncovered = (
                set(send.blocks)
                - invalidated.get(send.dst, set())
                - flushed.get(send.dst, set())
                - keep
            )
            if uncovered:
                raise ContractError(
                    f"node {send.dst} never restores consistency on blocks "
                    f"{sorted(uncovered)[:4]} (missing implicit_invalidate/flush)"
                )
