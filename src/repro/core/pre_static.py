"""Static (compile-time) redundant-communication analysis.

The paper's Section 4.3 casts both run-time-call placement and redundant
communication as partial-redundancy-elimination problems over a dataflow
lattice ("the availability of data"), to be solved at compile time — and
then implements neither, falling back to the run-time scheme.  The dynamic
half lives in :mod:`repro.core.pre`; this module builds the *static*
formulation the paper sketches:

* the program's phases form a graph (straight-line order plus a back edge
  around every sequential loop body);
* a parallel loop **generates** availability facts — one per (receiving
  pattern, array) communication it performs — and **kills** every fact on
  arrays it writes;
* classic forward *available-expressions* iteration to a fixed point, meets
  over predecessors;
* a loop's communication of array A is **steady-state redundant** when its
  fact is available on entry on every path, including around the back edge
  — i.e. after the first execution nothing invalidates the transferred
  data, so every later re-send can be elided.

Facts are compared at the pattern level (the parametric
:class:`~repro.core.access.RefPattern`), so the analysis is exact for
statements whose access sets do not depend on sequential loop variables and
conservatively silent for those that do (lu's shrinking broadcast generates
a *different* fact per pivot, which never becomes available).

The test-suite cross-validates this analysis against the dynamic tracker:
everything the static analysis calls redundant must be elided by the
dynamic PRE at run time (soundness), on every application in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access import RefPattern, analyze_loop
from repro.hpf.ast import ParallelAssign, Program, Reduce, ScalarAssign, SeqLoop

__all__ = ["PhaseNode", "RedundancyInfo", "analyze_redundancy"]


#: An availability fact: this read pattern's non-owner data has been
#: communicated and not overwritten since.  Patterns are frozen dataclasses,
#: so facts compare structurally — two loops reading the same halo generate
#: the same fact.
Fact = RefPattern


@dataclass
class PhaseNode:
    """One parallel statement in the phase graph."""

    index: int
    stmt: ParallelAssign | Reduce
    gen: frozenset[Fact] = frozenset()
    kill_arrays: frozenset[str] = frozenset()
    symbolic: bool = False       # access sets depend on sequential vars
    loop_id: int = -1            # innermost SeqLoop this node lives in
    preds: list[int] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    @property
    def label(self) -> str:
        return getattr(self.stmt, "label", f"phase{self.index}")


@dataclass
class RedundancyInfo:
    """Result: which statements' communication is steady-state redundant."""

    nodes: list[PhaseNode]
    #: stmt label -> arrays whose transfers are redundant at that statement
    redundant: dict[str, frozenset[str]]

    def redundant_arrays(self, label: str) -> frozenset[str]:
        return self.redundant.get(label, frozenset())

    @property
    def any_redundant(self) -> bool:
        return any(self.redundant.values())

    def summary(self) -> dict[str, list[str]]:
        return {k: sorted(v) for k, v in self.redundant.items() if v}


def _build_graph(program: Program, n_procs: int) -> list[PhaseNode]:
    """Flatten the statement tree into a phase graph with loop back edges."""
    nodes: list[PhaseNode] = []
    loop_counter = [0]

    def visit(body, entry_pred: list[int], loop_id: int) -> list[int]:
        """Wire `body`; returns the dangling exits feeding the next stmt."""
        preds = entry_pred
        for stmt in body:
            if isinstance(stmt, ScalarAssign):
                continue  # no array accesses: transparent to availability
            if isinstance(stmt, SeqLoop):
                # The loop body: entered from preds and from its own tail.
                loop_counter[0] += 1
                first = len(nodes)
                exits = visit(stmt.body, preds, loop_counter[0])
                if len(nodes) > first:
                    # back edge: body exit -> body head
                    for e in exits:
                        if first not in nodes[e].succs:
                            nodes[e].succs.append(first)
                            nodes[first].preds.append(e)
                    preds = exits
                continue
            node = _make_node(len(nodes), stmt, program, n_procs, loop_id)
            for p in preds:
                nodes[p].succs.append(node.index)
                node.preds.append(p)
            nodes.append(node)
            preds = [node.index]
        return preds

    visit(program.body, [], -1)
    return nodes


def _make_node(
    index: int,
    stmt: ParallelAssign | Reduce,
    program: Program,
    n_procs: int,
    loop_id: int,
) -> PhaseNode:
    access = analyze_loop(stmt, program, n_procs)
    symbolic = bool(access._used_symbols())
    gen: set[Fact] = set()
    if not symbolic:
        # Only patterns that actually communicate generate facts: a
        # pattern whose accesses stay within the owner's partition has
        # nothing to make redundant.
        inst = access.instantiate({})
        communicating = {
            a for p in range(n_procs) for a, _sec in inst.non_owner_reads[p]
        }
        for pat in access.read_patterns:
            if (
                pat.array in communicating
                and program.arrays[pat.array].dist != "replicated"
            ):
                gen.add(pat)
    kills = set()
    if isinstance(stmt, ParallelAssign):
        kills.add(stmt.lhs.array)
    # A fact on an array this very statement writes does not survive the
    # statement: the communicated data is overwritten in place (grav's
    # in-place relaxation), so the next iteration's transfer is fresh.
    gen = {f for f in gen if f.array not in kills}
    return PhaseNode(
        index,
        stmt,
        gen=frozenset(gen),
        kill_arrays=frozenset(kills),
        symbolic=symbolic,
        loop_id=loop_id,
    )


def analyze_redundancy(program: Program, n_procs: int) -> RedundancyInfo:
    """Run the availability fixed point; see the module docstring."""
    nodes = _build_graph(program, n_procs)
    if not nodes:
        return RedundancyInfo(nodes, {})

    universe = frozenset().union(*(n.gen for n in nodes)) if nodes else frozenset()
    avail_in: list[frozenset[Fact]] = [frozenset()] * len(nodes)
    avail_out: list[frozenset[Fact]] = [universe] * len(nodes)

    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n.preds:
                new_in = avail_out[n.preds[0]]
                for p in n.preds[1:]:
                    new_in = new_in & avail_out[p]
            else:
                new_in = frozenset()
            survived = frozenset(
                f for f in new_in if f.array not in n.kill_arrays
            )
            new_out = survived | n.gen
            if new_in != avail_in[n.index] or new_out != avail_out[n.index]:
                avail_in[n.index] = new_in
                avail_out[n.index] = new_out
                changed = True

    # Plain availability catches straight-line repetition.  Loop-carried
    # ("steady-state") redundancy is the classic partial-redundancy case —
    # available around the back edge but not on loop entry — which we
    # detect with the loop-invariance rule: a fact generated inside a loop
    # whose array no statement in that loop writes is redundant in every
    # iteration after the first.
    loop_kills: dict[int, set[str]] = {}
    for n in nodes:
        if n.loop_id >= 0:
            loop_kills.setdefault(n.loop_id, set()).update(n.kill_arrays)

    redundant: dict[str, frozenset[str]] = {}
    for n in nodes:
        hits = {f.array for f in n.gen if f in avail_in[n.index]}
        if n.loop_id >= 0:
            killed = loop_kills.get(n.loop_id, set())
            hits |= {f.array for f in n.gen if f.array not in killed}
        if hits:
            redundant[n.label] = frozenset(hits)
    return RedundancyInfo(nodes, redundant)
