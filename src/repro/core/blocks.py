"""Mapping array sections to cache blocks; the ``shmem_limits`` subsetting.

The multi-word-block problem (paper Section 3): a block can straddle array
elements with different owners or outside the analyzed section, so the
compiler may only take a block under explicit control when the section
*fully covers* it.  Given section ``a(m:n)``, ``shmem_limits`` selects the
subset ``a(m_l:n_l)`` whose endpoints "fall within closest fitting block
boundaries"; the leftover boundary blocks stay with the default protocol.
For 2-D sections the subsetting happens per column ("we have to do this
subsetting by iterating over the higher dimension").

This module turns concrete :class:`~repro.core.sections.Section` objects
into sorted block-id arrays against a :class:`GlobalArray`'s geometry:

``section_byte_runs``  maximal contiguous byte runs of a section
``section_blocks``     all blocks touched (what accesses actually hit)
``shmem_limits``       (controllable, boundary) block split
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.sections import Section
from repro.tempest.memory import GlobalArray

__all__ = ["section_blocks", "section_byte_runs", "shmem_limits"]


def section_byte_runs(arr: GlobalArray, sec: Section) -> list[tuple[int, int]]:
    """Maximal contiguous global byte ranges ``[lo, hi)`` of a section.

    Exploits Fortran layout: a run is a full prefix of inner dimensions ×
    a contiguous range in the first partial dimension; outer partial
    dimensions and strided columns are enumerated.  Whole-column sections
    over consecutive columns merge into a single run.
    """
    if sec.is_empty:
        return []
    if sec.rank != len(arr.shape):
        raise ValueError(
            f"section rank {sec.rank} vs array {arr.name} rank {len(arr.shape)}"
        )
    item = arr.itemsize
    inner_shape = arr.shape[:-1]

    # Find how many leading dims the section covers fully.
    head = 0
    for (lo, hi), extent in zip(sec.inner, inner_shape):
        if lo == 0 and hi == extent - 1:
            head += 1
        else:
            break

    # Elements in one contiguous run and its offset within a column.
    head_elems = 1
    for extent in inner_shape[:head]:
        head_elems *= extent
    if head < len(inner_shape):
        p_lo, p_hi = sec.inner[head]
        run_elems = head_elems * (p_hi - p_lo + 1)
        run_off = head_elems * p_lo
        tail_dims = sec.inner[head + 1 :]
        tail_extents = inner_shape[head + 1 :]
    else:
        run_elems = head_elems
        run_off = 0
        tail_dims = ()
        tail_extents = ()

    col_elems = arr._col_elems
    cols = list(sec.last)

    # Fast path: full columns, unit stride => one run for all columns.
    full_column = run_elems == col_elems and not tail_dims
    if full_column and sec.last.step == 1 and cols:
        lo_byte = arr.base + cols[0] * col_elems * item
        hi_byte = arr.base + (cols[-1] + 1) * col_elems * item
        return [(lo_byte, hi_byte)]

    # Strides (in elements) of the tail dims within a column.
    tail_strides = []
    stride = head_elems if head == len(inner_shape) else head_elems * inner_shape[head]
    for extent in tail_extents:
        tail_strides.append(stride)
        stride *= extent

    runs: list[tuple[int, int]] = []
    tail_ranges = [range(lo, hi + 1) for lo, hi in tail_dims]
    for j in cols:
        col_base = arr.base + j * col_elems * item
        for combo in itertools.product(*reversed(tail_ranges)) if tail_ranges else [()]:
            off = run_off
            for idx, s in zip(reversed(combo), tail_strides):
                off += idx * s
            lo_byte = col_base + off * item
            runs.append((lo_byte, lo_byte + run_elems * item))
    return runs


def section_blocks(arr: GlobalArray, sec: Section) -> np.ndarray:
    """Sorted unique ids of every block the section touches."""
    runs = section_byte_runs(arr, sec)
    if not runs:
        return np.empty(0, dtype=np.int64)
    bs = arr.config.block_size
    pieces = [np.arange(lo // bs, (hi - 1) // bs + 1, dtype=np.int64) for lo, hi in runs]
    return np.unique(np.concatenate(pieces))


def shmem_limits(arr: GlobalArray, sec: Section) -> tuple[np.ndarray, np.ndarray]:
    """Split a section's blocks into (compiler-controllable, boundary).

    A block is controllable when one contiguous run fully covers it (the
    paper's per-run subsetting); every other touched block is a boundary
    block left to the default protocol.
    """
    runs = section_byte_runs(arr, sec)
    if not runs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    bs = arr.config.block_size
    inner_pieces = []
    all_pieces = []
    for lo, hi in runs:
        all_pieces.append(np.arange(lo // bs, (hi - 1) // bs + 1, dtype=np.int64))
        first = -(-lo // bs)          # ceil
        last = hi // bs               # exclusive
        if last > first:
            inner_pieces.append(np.arange(first, last, dtype=np.int64))
    touched = np.unique(np.concatenate(all_pieces))
    if inner_pieces:
        inner = np.unique(np.concatenate(inner_pieces))
    else:
        inner = np.empty(0, dtype=np.int64)
    boundary = np.setdiff1d(touched, inner, assume_unique=True)
    return inner, boundary
