"""Figure 1 — coherence messages per producer→consumer block transfer.

(a) Default protocol, steady state: 8 messages per iteration —
    read-request, put-data-request, put-data-response, read-response,
    write-request, invalidation, acknowledgement, write-grant.
(b) Compiler-directed: 1 tagged data message per iteration, plus an
    amortized setup/teardown (mk_writable upgrade once, implicit_invalidate
    at phase end).
"""

import pytest

from benchmarks.conftest import print_table
from repro.tempest import Cluster, ClusterConfig, Distribution, HomePolicy, SharedMemory
from repro.tempest.stats import COHERENCE_KINDS, MsgKind


def _cluster():
    # Home at a third node so the full Figure-1 chain appears.
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
    arr = mem.alloc("a", (16, 3), Distribution.block(3))
    return Cluster(cfg, mem), arr.block_of_element((0, 1))


def run_default(iters: int):
    cl, b = _cluster()

    def producer():
        for it in range(1, iters + 1):
            yield from cl.write_blocks(1, [b], phase=it)
            yield from cl.barrier(1)
            yield from cl.barrier(1)

    def consumer():
        for _ in range(iters):
            yield from cl.barrier(2)
            yield from cl.read_blocks(2, [b])
            yield from cl.barrier(2)

    def home():
        for _ in range(iters):
            yield from cl.barrier(0)
            yield from cl.barrier(0)

    stats = cl.run({0: home(), 1: producer(), 2: consumer()})
    m = stats.messages_by_kind()
    return sum(v for k, v in m.items() if k in COHERENCE_KINDS), m.get(MsgKind.DATA, 0)


def run_optimized(iters: int):
    cl, b = _cluster()

    def producer():
        yield from cl.ext.mk_writable(1, [b])
        yield from cl.barrier(1)
        for it in range(1, iters + 1):
            yield from cl.write_blocks(1, [b], phase=it)
            yield from cl.ext.send_blocks(1, [b], 2)
            yield from cl.barrier(1)

    def consumer():
        yield from cl.ext.implicit_writable(2, [b])
        yield from cl.barrier(2)
        for _ in range(iters):
            yield from cl.ext.ready_to_recv(2, 1)
            yield from cl.read_blocks(2, [b])
            yield from cl.barrier(2)
        yield from cl.ext.implicit_invalidate(2, [b])

    def home():
        for _ in range(iters + 1):
            yield from cl.barrier(0)

    stats = cl.run({0: home(), 1: producer(), 2: consumer()})
    m = stats.messages_by_kind()
    return sum(v for k, v in m.items() if k in COHERENCE_KINDS), m.get(MsgKind.DATA, 0)


def test_fig1_message_counts(benchmark):
    iters = 20

    def measure():
        return run_default(iters), run_optimized(iters)

    (d_coh, d_data), (o_coh, o_data) = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Steady state of the default protocol: 8 messages per iteration
    # (the first iteration is cold: write 2 + read 4).
    default_steady = (d_coh - 6) / (iters - 1)
    opt_per_iter = o_data / iters
    print_table(
        "Figure 1: messages per producer->consumer transfer",
        ["scheme", "coherence msgs/iter", "data msgs/iter", "setup msgs"],
        [
            ["default protocol", f"{default_steady:.2f}", 0, 0],
            ["compiler-directed", 0, f"{opt_per_iter:.2f}", o_coh],
        ],
    )
    assert default_steady == pytest.approx(8.0)
    assert opt_per_iter == pytest.approx(1.0)
    assert o_coh <= 2  # one mk_writable upgrade (write-req + grant)
    assert d_data == 0
