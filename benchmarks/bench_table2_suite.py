"""Table 2 — the application suite: problem sizes and memory usage.

The paper's sources were Fortran with 4-byte reals; this reproduction uses
float64, so paper-scale memory should come out at roughly 2x the paper's
MB column (modulo arrays the reconstruction shapes slightly differently).
"""

from benchmarks.conftest import APP_NAMES, print_table
from repro.apps import APPS


def test_table2_application_suite(benchmark):
    def build_all():
        out = []
        for name in APP_NAMES:
            spec = APPS[name]
            prog = spec.program("paper")
            out.append(
                (
                    name,
                    spec.paper["problem"],
                    spec.paper["memory_mb"],
                    prog.total_bytes() / 1e6,
                    len(prog.arrays),
                )
            )
        return out

    rows_data = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = [
        [name, problem, paper_mb, f"{ours_mb:.1f}", n_arrays]
        for name, problem, paper_mb, ours_mb, n_arrays in rows_data
    ]
    print_table(
        "Table 2: application suite (paper scale)",
        ["app", "problem size (paper)", "paper MB (f32)", "ours MB (f64)", "arrays"],
        rows,
    )
    for name, _problem, paper_mb, ours_mb, _n in rows_data:
        # float64 vs float32 => expect ours within [0.8x, 3x] of paper's MB.
        # cg is the exception: the MIT code evidently carried more state
        # than the bare CGNR vectors (4.6 MB for a 180x360 system); our
        # reconstruction stores exactly A, A^T and five vectors (~1 MB).
        lo = 0.15 if name == "cg" else 0.8
        assert lo * paper_mb < ours_mb < 3.0 * paper_mb, (name, ours_mb, paper_mb)
