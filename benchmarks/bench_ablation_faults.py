"""Ablation — completion time and repair traffic vs interconnect loss.

The paper assumes a reliable Myrinet; this bench quantifies what that
assumption is worth.  A drop-rate sweep (with mild duplication and jitter
riding along) runs jacobi and cg through the reliable transport and
reports completion time, retransmissions and duplicate suppressions.
Two properties should hold:

* graceful degradation — completion time grows with the drop rate but the
  runs stay correct (identical numerics, clean coherence audit);
* proportional repair cost — retransmissions scale with the drop rate,
  and disappear entirely on the perfect wire.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest import Cluster, Distribution, MsgKind, SharedMemory
from repro.tempest.config import US, ClusterConfig
from repro.tempest.faults import FaultConfig

DROP_RATES = (0.0, 0.01, 0.05, 0.10)


def fault_config(drop: float) -> FaultConfig | None:
    if drop == 0.0:
        return None  # the perfect wire: transport bypassed entirely
    return FaultConfig(
        drop_prob=drop,
        dup_prob=drop / 2,
        jitter_ns=10 * US,
        seed=1997,
    )


def drop_config(drop: float) -> ClusterConfig:
    cfg = ClusterConfig(n_nodes=8)
    faults = fault_config(drop)
    return cfg if faults is None else cfg.scaled(faults=faults)


@pytest.mark.parametrize("app", ["jacobi", "cg"])
def test_ablation_fault_rates(benchmark, app):
    baseline = serve_batch(
        [bench_request(app, ClusterConfig(n_nodes=8), backend="uniproc")]
    )[0]

    def measure():
        results = serve_batch(
            [
                bench_request(app, drop_config(drop), optimize=True)
                for drop in DROP_RATES
            ]
        )
        rows = []
        for drop, result in zip(DROP_RATES, results):
            result.assert_same_numerics(baseline)  # faults never change answers
            rel = result.stats.reliability_summary()
            rows.append((drop, result.elapsed_ns, rel))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    clean_ns = rows[0][1]
    print_table(
        f"Ablation: interconnect loss rate ({app}, 8 nodes, opt, seed 1997)",
        ["drop %", "time ms", "slowdown", "retransmits", "drops", "dups"],
        [
            [
                f"{drop * 100:.0f}",
                f"{ns / 1e6:.1f}",
                f"{ns / clean_ns:.2f}x",
                rel["retransmits"],
                rel["drops"],
                rel["dups"],
            ]
            for drop, ns, rel in rows
        ],
    )
    by_rate = {r[0]: r for r in rows}
    # The perfect wire pays nothing for the reliability machinery.
    assert not any(by_rate[0.0][2].values())
    # Repair traffic scales with the loss rate...
    assert (
        by_rate[0.10][2]["retransmits"]
        > by_rate[0.01][2]["retransmits"]
        > 0
    )
    # ...and the runs degrade but complete: a lossy wire costs time, never
    # correctness (numerics asserted per-run above, audit ran in run_shmem).
    assert by_rate[0.10][1] > clean_ns


# --------------------------------------------------------------------- #
# adaptive vs fixed retransmission under bulk transfers
# --------------------------------------------------------------------- #
PAYLOADS = (512, 1024, 2048)      # up to max_payload_blocks * block_size
STREAM_FRAMES = 8


def bulk_stream_run(payload: int, adaptive: bool):
    """A stream of bulk data pushes (the optimizer's unit of transfer)
    over the reliable transport.  A 2048-byte payload serializes for
    ~103 us at 20 MB/s, so its ack round trip alone overruns the fixed
    120 us timer; the size-aware adaptive timer must not misfire."""
    config = ClusterConfig(
        n_nodes=2,
        faults=FaultConfig(jitter_ns=1, seed=0, adaptive_rto=adaptive),
    )
    mem = SharedMemory(config)
    mem.alloc("a", (32, 16), Distribution.block(config.n_nodes))
    cluster = Cluster(config, mem)
    delivered = []
    for i in range(STREAM_FRAMES):
        cluster.engine.call_after(
            i * 1_000 * US,
            cluster.network.send,
            0, 1, MsgKind.DATA, lambda i=i: delivered.append(i),
            config.handler_data_recv_ns, payload,
        )
    cluster.engine.run()
    assert delivered == list(range(STREAM_FRAMES))  # exactly-once, in order
    return cluster.stats


def test_ablation_adaptive_rto_bulk(benchmark):
    def measure():
        rows = []
        for payload in PAYLOADS:
            fixed = bulk_stream_run(payload, adaptive=False)
            adapt = bulk_stream_run(payload, adaptive=True)
            rows.append((payload, fixed.reliability_summary(),
                         adapt.reliability_summary()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Ablation: RTO under bulk serialization "
        f"({STREAM_FRAMES}-frame stream, 20 MB/s wire, fixed 120 us timer)",
        ["payload B", "fixed retrans", "fixed spurious",
         "adaptive retrans", "adaptive spurious"],
        [
            [p, f["retransmits"], f["spurious_retransmits"],
             a["retransmits"], a["spurious_retransmits"]]
            for p, f, a in rows
        ],
    )
    by_payload = {p: (f, a) for p, f, a in rows}
    # Small payloads fit inside the fixed timer: both modes stay quiet.
    f, a = by_payload[512]
    assert f["spurious_retransmits"] == a["spurious_retransmits"] == 0
    # At the bulk-transfer limit the fixed timer fires on every frame;
    # the adaptive timer, strictly fewer (none — nothing was ever lost).
    f, a = by_payload[2048]
    assert f["spurious_retransmits"] == STREAM_FRAMES
    assert a["spurious_retransmits"] < f["spurious_retransmits"]
    assert a["spurious_retransmits"] == a["retransmits"] == 0
