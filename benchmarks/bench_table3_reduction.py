"""Table 3 — reduction in miss count and communication time.

For each application, on 8 nodes:

* compute time (per-node average),
* communication time, dual-CPU, unoptimized — and its % reduction with the
  optimizations on,
* the same for the single-CPU configuration,
* per-node miss count of the unoptimized run — and its % reduction.

Absolute times are simulation outputs at the bench scale (paper scale via
``REPRO_PAPER_SCALE=1``); the comparison targets are the *reduction*
columns, which are scale-robust.
"""

import pytest

from benchmarks.conftest import APP_NAMES, RunCache, bench_scale, print_table
from repro.apps import APPS


def table3_rows(runs: RunCache):
    rows = []
    for name in APP_NAMES:
        # Full optimization stack; rt-elim's whole-program assumptions fail
        # structurally for our cg (its per-owner vector chunks are smaller
        # than a cache block, so senders cannot retain exclusivity) — use
        # the base+bulk optimizer there, as the compiler would.
        rte = name != "cg"
        un_d = runs.run(name, dual_cpu=True)
        op_d = runs.run(name, dual_cpu=True, optimize=True, rt_elim=rte)
        un_s = runs.run(name, dual_cpu=False)
        op_s = runs.run(name, dual_cpu=False, optimize=True, rt_elim=rte)
        red_d = 100 * (1 - op_d.comm_ms / un_d.comm_ms)
        red_s = 100 * (1 - op_s.comm_ms / un_s.comm_ms)
        miss_red = 100 * (1 - op_d.misses_per_node / un_d.misses_per_node)
        rows.append(
            dict(
                app=name,
                compute_ms=un_d.compute_ms,
                comm_dual_ms=un_d.comm_ms,
                red_dual=red_d,
                comm_single_ms=un_s.comm_ms,
                red_single=red_s,
                misses_per_node=un_d.misses_per_node,
                miss_red=miss_red,
            )
        )
    return rows


def test_table3_reduction(runs, benchmark):
    rows = benchmark.pedantic(table3_rows, args=(runs,), rounds=1, iterations=1)
    display = []
    for r in rows:
        paper = APPS[r["app"]].paper
        display.append(
            [
                r["app"],
                f"{r['compute_ms']:.1f}",
                f"{r['comm_dual_ms']:.1f}",
                f"{r['red_dual']:.1f} ({paper['comm_reduction_dual']})",
                f"{r['comm_single_ms']:.1f}",
                f"{r['red_single']:.1f} ({paper['comm_reduction_single']})",
                f"{r['misses_per_node']:.0f}",
                f"{r['miss_red']:.1f} ({paper['miss_reduction']})",
            ]
        )
    print_table(
        f"Table 3: miss & comm-time reduction [scale={bench_scale()}] "
        "(ours, paper in parens)",
        [
            "app",
            "compute ms",
            "comm dual ms",
            "%red dual",
            "comm 1cpu ms",
            "%red 1cpu",
            "misses/node",
            "%miss red",
        ],
        display,
    )

    by_app = {r["app"]: r for r in rows}
    # Shape assertions (scale-robust):
    # 1. Every app's optimization reduces both misses and comm time.
    for r in rows:
        assert r["miss_red"] > 10, r
        assert r["red_dual"] > 0, r
    # 2. The stencil codes achieve strong miss reductions...
    for app in ("jacobi", "shallow"):
        assert by_app[app]["miss_red"] > 55, by_app[app]
    # ...and jacobi is the best of the suite, as in the paper (96.7%).
    assert by_app["jacobi"]["miss_red"] == max(r["miss_red"] for r in rows)
    # 3. grav's small extents make it the weakest, as in the paper (38.2%).
    assert by_app["grav"]["miss_red"] == min(r["miss_red"] for r in rows)
    # 4. Single-CPU communication time exceeds dual-CPU everywhere.
    for r in rows:
        assert r["comm_single_ms"] > r["comm_dual_ms"], r
