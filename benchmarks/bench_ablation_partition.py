"""Ablation — asymmetric faults and partition survival.

Runs jacobi and shallow (the acceptance pair) unoptimized at 8 nodes
through four interconnect conditions:

* ``clean``             — perfect wire (the baseline);
* ``flaky-link``        — a per-link profile: one directed link drops 25%
                          of its frames while the rest of the cluster is
                          untouched;
* ``healed-partition``  — node 1 unreachable for a 3 ms window starting
                          at 200 us; channels that give up park their
                          frames and drain when the window closes;
* ``permanent-partition`` — the same cut, never healed: the run finishes
                          *degraded* (``completed=False``) with partial
                          stats and a failure report instead of a
                          traceback.

Per cell the bench records elapsed simulated time, message/byte counts,
reliability counters (drops, retransmits, give-ups), partition events and
the completion flag; completed cells are numerics-checked against the
uniprocessor reference.  The matrix is written to ``BENCH_partition.json``
so ``python -m repro.report --bench-dir`` can diff ablations without
re-running the suite.

Three properties should hold:

* overlays are *surgical*: the clean cell shows zero reliability counters,
  and completed faulty cells still reproduce the exact fault-free
  numerics;
* a healed partition costs only time: every give-up event drains
  (``healed`` on each event), the post-heal audit passes (run_shmem
  raises otherwise), and elapsed time never beats the clean cell;
* a permanent partition degrades instead of aborting: ``completed`` is
  False, the failure report names node 1 unreachable, and the counters
  accumulated before the give-up survive in the partial stats.
"""

import json

from benchmarks.conftest import (
    bench_request,
    bench_scale,
    load_bench_json,
    print_table,
    serve_batch,
)
from repro.tempest.config import ClusterConfig
from repro.tempest.faults import FaultConfig, LinkFaultConfig, PartitionScenario

BENCH_APPS = ["jacobi", "shallow"]
N_NODES = 8
JSON_PATH = "BENCH_partition.json"

_US = 1_000


def fault_variants() -> dict[str, FaultConfig | None]:
    window = dict(t_start_ns=200 * _US, nodes=frozenset({1}))
    return {
        "clean": None,
        "flaky-link": FaultConfig(
            seed=11, link_faults=(LinkFaultConfig(0, 1, drop_prob=0.25),)
        ),
        "healed-partition": FaultConfig(
            seed=11,
            partitions=(
                PartitionScenario("blip", duration_ns=3_000 * _US, **window),
            ),
        ),
        "permanent-partition": FaultConfig(
            seed=11, max_retries=4,
            partitions=(PartitionScenario("dead", **window),),
        ),
    }


def cell(result) -> dict:
    s = result.stats
    rel = s.reliability_summary()
    return {
        "elapsed_ns": result.elapsed_ns,
        "messages": s.total_messages,
        "bytes": s.total_bytes,
        "events_dispatched": s.events_dispatched,
        "drops": rel["drops"],
        "retransmits": rel["retransmits"],
        "gave_up": rel["gave_up"],
        "partition_events": len(s.partition_events),
        "healed_events": sum(1 for e in s.partition_events if e["healed"]),
        "completed": s.completed,
    }


def variant_config(faults) -> ClusterConfig:
    cfg = ClusterConfig(n_nodes=N_NODES)
    return cfg if faults is None else cfg.scaled(faults=faults)


def test_ablation_partition_matrix(benchmark):
    def measure():
        # The full (app x wire-condition) matrix plus per-app uniproc
        # references in one serve batch; degraded cells cache like any
        # other (a permanent cut is a deterministic outcome of its key).
        variants = fault_variants()
        requests = []
        for app in BENCH_APPS:
            requests.append(
                bench_request(
                    app, ClusterConfig(n_nodes=N_NODES), backend="uniproc"
                )
            )
            for faults in variants.values():
                requests.append(bench_request(app, variant_config(faults)))
        results = serve_batch(requests)
        matrix = {}
        stride = 1 + len(variants)
        for i, app in enumerate(BENCH_APPS):
            uni = results[i * stride]
            cells = {}
            for j, name in enumerate(variants):
                result = results[i * stride + 1 + j]
                if result.completed:
                    result.assert_same_numerics(uni)
                cells[name] = cell(result)
            matrix[app] = cells
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_table(
        f"Ablation: partition survival ({N_NODES} nodes, unopt)",
        ["app", "ms clean", "ms flaky", "ms healed", "ms degraded",
         "give-ups", "healed ev", "drops flaky", "completed"],
        [
            [
                app,
                f"{c['clean']['elapsed_ns'] / 1e6:.1f}",
                f"{c['flaky-link']['elapsed_ns'] / 1e6:.1f}",
                f"{c['healed-partition']['elapsed_ns'] / 1e6:.1f}",
                f"{c['permanent-partition']['elapsed_ns'] / 1e6:.1f}",
                c["healed-partition"]["gave_up"],
                c["healed-partition"]["healed_events"],
                c["flaky-link"]["drops"],
                f"{'y' if c['healed-partition']['completed'] else 'n'}/"
                f"{'y' if c['permanent-partition']['completed'] else 'n'}",
            ]
            for app, c in matrix.items()
        ],
    )

    previous = load_bench_json(JSON_PATH)
    if previous is not None and previous.get("scale") == bench_scale():
        for app, cells in matrix.items():
            old = previous.get("apps", {}).get(app, {}).get("healed-partition")
            if old and "elapsed_ns" in old:
                print(
                    f"{app}: healed-partition elapsed "
                    f"{old['elapsed_ns'] / 1e6:.1f} ms -> "
                    f"{cells['healed-partition']['elapsed_ns'] / 1e6:.1f} ms "
                    f"vs previous artifact"
                )

    with open(JSON_PATH, "w") as fh:
        json.dump(
            {"scale": bench_scale(), "n_nodes": N_NODES, "apps": matrix},
            fh, indent=2, sort_keys=True,
        )
    print(f"\nwrote {JSON_PATH}")

    for app, cells in matrix.items():
        clean = cells["clean"]
        # The baseline never touches the reliability machinery.
        assert clean["drops"] == 0 and clean["gave_up"] == 0, app
        assert clean["completed"], app
        # The flaky link bites, is repaired, and the run completes.
        flaky = cells["flaky-link"]
        assert flaky["completed"] and flaky["drops"] > 0, app
        assert flaky["retransmits"] > 0, app
        # A healed partition costs time, never correctness.
        healed = cells["healed-partition"]
        assert healed["completed"], app
        assert healed["gave_up"] > 0, app
        assert healed["healed_events"] == healed["partition_events"], app
        assert healed["elapsed_ns"] >= clean["elapsed_ns"], app
        # A permanent partition degrades with its partial stats intact.
        dead = cells["permanent-partition"]
        assert not dead["completed"], app
        assert dead["gave_up"] > 0, app
        assert dead["healed_events"] == 0, app
        assert dead["messages"] > 0, app
