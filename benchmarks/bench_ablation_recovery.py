"""Ablation — fail-stop crash survival and the cost of checkpoints.

Runs jacobi and grav (a halo app and a reduction app) unoptimized at
8 nodes through four fail-stop conditions:

* ``clean``          — no crash (the baseline);
* ``crash-no-ckpt``  — node 2 fail-stops halfway through the clean run
                       and restarts 500 us later, but no
                       checkpoint was ever taken: nothing to roll back
                       to, so the run finishes *degraded*;
* ``crash-ckpt-1``   — the same crash with a checkpoint at every
                       barrier: detection, rollback to the last barrier
                       cut, re-execution, identical numerics;
* ``crash-ckpt-4``   — checkpoints every 4th barrier: cheaper writes,
                       longer re-execution after the rollback — and, for
                       a barrier-sparse app like grav (6 barriers, the
                       4th at ~85% of the run), possibly *no* checkpoint
                       before a mid-run crash, in which case the sparse
                       cell degrades exactly like the no-ckpt cell.

The crash instant is derived from each app's own clean run (elapsed/2),
so the scenario stays mid-run — past the first barrier checkpoint — at
any ``REPRO_PAPER_SCALE``.  Per cell
the bench records elapsed simulated time, checkpoint count and bytes,
rollbacks, detection latency and modelled outage, and the completion
flag; completed cells are numerics-checked against the uniprocessor
reference.  The matrix is written to ``BENCH_recovery.json`` so
``python -m repro.report --bench-dir`` can diff ablations without
re-running the suite.

Three properties should hold:

* recovery changes the clock, never the answer: every cell that took a
  checkpoint before the crash completes with the exact uniprocessor
  numerics and a clean audit, and never beats the clean cell's elapsed
  time;
* the checkpoint-interval trade-off is visible: ckpt-1 writes at least
  as many checkpoints as ckpt-4, and a cell whose interval left no
  checkpoint before the crash degrades rather than recovers;
* without a checkpoint the contract degrades instead of lying: the
  no-ckpt cell reports ``completed=False`` and names the crashed node.
"""

import json

from benchmarks.conftest import (
    bench_request,
    bench_scale,
    load_bench_json,
    print_table,
    serve_batch,
)
from repro.tempest.config import ClusterConfig
from repro.tempest.faults import CrashScenario, FaultConfig

BENCH_APPS = ["jacobi", "grav"]
N_NODES = 8
CRASH_NODE = 2
RESTART_US = 500
JSON_PATH = "BENCH_recovery.json"

_US = 1_000


def crash_variants(t_crash_ns: int) -> dict[str, FaultConfig | None]:
    # max_retries=6 keeps keepalive detection at ~8 ms instead of the
    # ~60 ms the default 32-retry budget would spend proving the death.
    scen = CrashScenario(CRASH_NODE, t_crash_ns, RESTART_US * _US)
    return {
        "clean": None,
        "crash-no-ckpt": FaultConfig(crashes=(scen,), max_retries=6),
        "crash-ckpt-1": FaultConfig(
            crashes=(scen,), max_retries=6, checkpoint_every=1
        ),
        "crash-ckpt-4": FaultConfig(
            crashes=(scen,), max_retries=6, checkpoint_every=4
        ),
    }


def cell(result) -> dict:
    s = result.stats
    detected = None
    if s.crash_events and s.crash_events[0]["detected_t_ns"] is not None:
        detected = s.crash_events[0]["detected_t_ns"] - s.crash_events[0]["t_ns"]
    return {
        "elapsed_ns": result.elapsed_ns,
        "messages": s.total_messages,
        "events_dispatched": s.events_dispatched,
        "checkpoints": s.recovery_checkpoints,
        "checkpoint_bytes": s.recovery_checkpoint_bytes,
        "rollbacks": s.recovery_rollbacks,
        "recovery_ns": s.recovery_ns,
        "detect_latency_ns": detected,
        "completed": s.completed,
    }


def test_ablation_recovery_matrix(benchmark):
    def measure():
        cfg = ClusterConfig(n_nodes=N_NODES)
        # Two serve batches: the crash instant is derived from each app's
        # own clean run, so the references must land before the crash
        # cells can even be phrased.
        refs = serve_batch(
            [
                req
                for app in BENCH_APPS
                for req in (
                    bench_request(app, cfg, backend="uniproc"),
                    bench_request(app, cfg),
                )
            ]
        )
        per_app = {
            app: (refs[2 * i], refs[2 * i + 1])
            for i, app in enumerate(BENCH_APPS)
        }
        crash_requests, index = [], []
        for app, (_uni, clean) in per_app.items():
            for name, faults in crash_variants(clean.elapsed_ns // 2).items():
                if faults is None:
                    continue
                crash_requests.append(
                    bench_request(app, cfg.scaled(faults=faults))
                )
                index.append((app, name))
        crashed = dict(zip(index, serve_batch(crash_requests)))
        matrix = {}
        for app, (uni, clean) in per_app.items():
            clean.assert_same_numerics(uni)
            cells = {"clean": cell(clean)}
            for name in crash_variants(0):
                if name == "clean":
                    continue
                result = crashed[(app, name)]
                if result.completed:
                    result.assert_same_numerics(uni)
                cells[name] = cell(result)
            matrix[app] = cells
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_table(
        f"Ablation: fail-stop recovery ({N_NODES} nodes, unopt)",
        ["app", "ms clean", "ms ckpt-1", "ms ckpt-4", "ckpts 1/4",
         "ckpt MB", "detect ms", "completed"],
        [
            [
                app,
                f"{c['clean']['elapsed_ns'] / 1e6:.1f}",
                f"{c['crash-ckpt-1']['elapsed_ns'] / 1e6:.1f}",
                f"{c['crash-ckpt-4']['elapsed_ns'] / 1e6:.1f}",
                f"{c['crash-ckpt-1']['checkpoints']}/"
                f"{c['crash-ckpt-4']['checkpoints']}",
                f"{c['crash-ckpt-1']['checkpoint_bytes'] / 1e6:.1f}",
                f"{(c['crash-ckpt-1']['detect_latency_ns'] or 0) / 1e6:.1f}",
                f"{'y' if c['crash-ckpt-1']['completed'] else 'n'}/"
                f"{'y' if c['crash-no-ckpt']['completed'] else 'n'}",
            ]
            for app, c in matrix.items()
        ],
    )

    previous = load_bench_json(JSON_PATH)
    if previous is not None and previous.get("scale") == bench_scale():
        for app, cells in matrix.items():
            old = previous.get("apps", {}).get(app, {}).get("crash-ckpt-1")
            if old and "elapsed_ns" in old:
                print(
                    f"{app}: crash-ckpt-1 elapsed "
                    f"{old['elapsed_ns'] / 1e6:.1f} ms -> "
                    f"{cells['crash-ckpt-1']['elapsed_ns'] / 1e6:.1f} ms "
                    f"vs previous artifact"
                )

    with open(JSON_PATH, "w") as fh:
        json.dump(
            {"scale": bench_scale(), "n_nodes": N_NODES, "apps": matrix},
            fh, indent=2, sort_keys=True,
        )
    print(f"\nwrote {JSON_PATH}")

    for app, cells in matrix.items():
        clean = cells["clean"]
        # The baseline never touches the recovery machinery.
        assert clean["completed"], app
        assert clean["checkpoints"] == 0 and clean["rollbacks"] == 0, app
        # No checkpoint: nothing to roll back to, degrade loudly.
        no_ckpt = cells["crash-no-ckpt"]
        assert not no_ckpt["completed"], app
        assert no_ckpt["rollbacks"] == 0, app
        assert no_ckpt["detect_latency_ns"] is not None, app
        # A cell recovers iff a checkpoint preceded the crash; ckpt-1
        # always has one (the crash is past the first barrier by
        # construction), sparser intervals may not.
        assert cells["crash-ckpt-1"]["checkpoints"] >= 1, app
        for name in ("crash-ckpt-1", "crash-ckpt-4"):
            rec = cells[name]
            if rec["checkpoints"] >= 1:
                assert rec["completed"], (app, name)
                assert rec["rollbacks"] >= 1, (app, name)
                assert rec["recovery_ns"] >= RESTART_US * _US, (app, name)
                assert rec["elapsed_ns"] >= clean["elapsed_ns"], (app, name)
            else:
                assert not rec["completed"], (app, name)
                assert rec["rollbacks"] == 0, (app, name)
        # Denser checkpoints write at least as often as sparse ones.
        assert (
            cells["crash-ckpt-1"]["checkpoints"]
            >= cells["crash-ckpt-4"]["checkpoints"]
        ), app
