"""Engine-speed bench and perf-regression guard (``BENCH_engine.json``).

Two modes, one artifact:

* ``--write`` measures host wall time and event throughput for the app ×
  scale matrix on the current tree and refreshes ``BENCH_engine.json``
  (``engine-speed/1`` schema, rendered in the report appendix).  Baseline
  (``old_*``) numbers come either from ``--baseline-src <path>`` — the
  same measurements run in a subprocess against a checkout of the
  baseline commit — or are carried over from the existing artifact.

* ``--check`` is the CI guard: it re-measures the acceptance pair's
  *off* cells (unoptimized, no observability bus — exactly
  ``bench_ablation_obs.run_cell(prog, "off")``) and fails when host wall
  regresses more than ``--budget`` (default 20%) against the recorded
  values.  Raw wall times are not portable across runners, so both sides
  are normalized by a pure-Python calibration loop timed on the same
  host and stored in the artifact (``calibration_s``).

Usage::

    python benchmarks/bench_engine_speed.py --write [--baseline-src DIR]
    python benchmarks/bench_engine_speed.py --check [--budget 1.2]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time

#: Make ``benchmarks`` importable when invoked as a script from anywhere.
_ROOT = os.path.abspath(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

N_NODES = 8
JSON_PATH = "BENCH_engine.json"
#: (app, scale, repeats) — paper cells run once (they are tens of seconds)
MATRIX = [
    ("jacobi", "default", 3),
    ("jacobi", "paper", 1),
    ("shallow", "default", 3),
    ("shallow", "paper", 1),
    ("grav", "default", 3),
    ("grav", "paper", 1),
    ("pde", "default", 3),
    ("pde", "paper", 1),
]
#: The guard's cells: the acceptance pair's off-cells (BENCH_obs semantics).
GUARD_APPS = ("jacobi", "shallow")
GUARD_REPEATS = 3


def calibration_s() -> float:
    """Seconds for a fixed pure-Python loop — a host-speed yardstick."""
    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        s = 0
        for i in range(2_000_000):
            s += i & 7
        best = min(best, time.perf_counter() - t0)
    assert s >= 0
    return best


def measure_cell(app: str, scale: str, repeats: int) -> dict:
    """Host wall (min of ``repeats``) + events for one optimized run."""
    from repro.apps import APPS
    from repro.runtime import run_shmem
    from repro.tempest.config import ClusterConfig

    prog = APPS[app].program(scale)
    best = math.inf
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = run_shmem(
            prog, ClusterConfig(n_nodes=N_NODES), optimize=True, bulk=True,
            rt_elim=(app != "cg"),
        )
        best = min(best, time.perf_counter() - t0)
        events = r.stats.events_dispatched
    return {
        "host_wall_s": round(best, 4),
        "events": events,
        "events_per_sec": int(events / best),
    }


def measure_off_cell(app: str, repeats: int) -> float:
    """Host wall (min of ``repeats``) of one BENCH_obs-style off cell."""
    from benchmarks.bench_ablation_obs import run_cell
    from repro.apps import APPS

    prog = APPS[app].program("default")
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_cell(prog, "off")
        best = min(best, time.perf_counter() - t0)
    return best


def measure_matrix() -> dict:
    out: dict = {}
    for app, scale, repeats in MATRIX:
        out.setdefault(app, {})[scale] = measure_cell(app, scale, repeats)
        print(f"  {app}/{scale}: {out[app][scale]['host_wall_s']}s",
              file=sys.stderr, flush=True)
    return out


def measure_off_cells() -> dict:
    return {a: round(measure_off_cell(a, GUARD_REPEATS), 4) for a in GUARD_APPS}


def _baseline_measure(baseline_src: str, fn: str = "measure_matrix") -> dict:
    """Run one of this module's measurement functions against another tree."""
    code = (
        "import json,sys;"
        f"sys.path.insert(0, {_ROOT!r});"
        f"from benchmarks.bench_engine_speed import {fn};"
        f"print(json.dumps({fn}()))"
    )
    env = dict(os.environ, PYTHONPATH=os.path.abspath(baseline_src))
    res = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    if res.returncode != 0:
        raise RuntimeError(f"baseline measurement failed:\n{res.stderr}")
    return json.loads(res.stdout.splitlines()[-1])


def write(args: argparse.Namespace) -> int:
    apps = measure_matrix()
    old: dict = {}
    if args.baseline_src:
        print(f"measuring baseline from {args.baseline_src} ...", flush=True)
        old = _baseline_measure(args.baseline_src)
    elif os.path.exists(args.json):
        with open(args.json) as fh:
            prev = json.load(fh)
        old = {
            a: {s: {"host_wall_s": c["old_host_wall_s"],
                    "events_per_sec": c["old_events_per_sec"]}
                for s, c in cells.items() if "old_host_wall_s" in c}
            for a, cells in prev.get("apps", {}).items()
        }
    speedups = []
    for app, cells in apps.items():
        for scale, cell in cells.items():
            b = old.get(app, {}).get(scale)
            if not b:
                continue
            cell["old_host_wall_s"] = round(b["host_wall_s"], 4)
            cell["old_events_per_sec"] = int(b["events_per_sec"])
            cell["speedup"] = round(b["host_wall_s"] / cell["host_wall_s"], 2)
            speedups.append(cell["speedup"])
    off = measure_off_cells()
    off_old = (
        _baseline_measure(args.baseline_src, "measure_off_cells")
        if args.baseline_src else {}
    )
    doc = {
        "schema": "engine-speed/1",
        "baseline_commit": args.baseline_commit,
        "n_nodes": N_NODES,
        "repeats": 3,
        "flags": {"optimize": True, "bulk": True},
        "geomean_speedup": round(
            math.exp(sum(map(math.log, speedups)) / len(speedups)), 2
        ) if speedups else None,
        "apps": apps,
        "off_cells": off,
        "calibration_s": round(calibration_s(), 4),
    }
    if off_old:
        doc["off_cells_old"] = off_old
        doc["off_cells_speedup"] = {
            a: round(off_old[a] / off[a], 2) for a in off if a in off_old
        }
    with open(args.json, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json} (geomean {doc['geomean_speedup']}x)")
    return 0


def check(args: argparse.Namespace) -> int:
    with open(args.json) as fh:
        doc = json.load(fh)
    recorded_off = doc.get("off_cells")
    recorded_calib = doc.get("calibration_s")
    if not recorded_off or not recorded_calib:
        print(f"{args.json} lacks off_cells/calibration_s; run --write first")
        return 2
    calib = calibration_s()
    scale = recorded_calib / calib  # >1: this host is faster than recorder
    print(f"calibration: recorded {recorded_calib}s, here {calib:.4f}s "
          f"(normalizing x{scale:.2f})")
    failed = []
    for app, recorded in recorded_off.items():
        wall = measure_off_cell(app, GUARD_REPEATS)
        normalized = wall * scale
        budget = recorded * args.budget
        verdict = "ok" if normalized <= budget else "REGRESSION"
        print(f"  {app} off-cell: {wall:.3f}s raw, {normalized:.3f}s "
              f"normalized vs {recorded}s recorded "
              f"(budget {budget:.3f}s) {verdict}")
        if normalized > budget:
            failed.append(app)
    if failed:
        print(f"off-cell host wall regressed >"
              f"{round((args.budget - 1) * 100)}% for: {', '.join(failed)}")
        return 1
    print("engine perf guard: ok")
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true")
    mode.add_argument("--check", action="store_true")
    p.add_argument("--json", default=JSON_PATH)
    p.add_argument("--baseline-src", default=None,
                   help="path to a baseline checkout's src/ for old_* numbers")
    p.add_argument("--baseline-commit", default="bfcfe3e")
    p.add_argument("--budget", type=float, default=1.2,
                   help="allowed off-cell wall ratio vs recorded (1.2 = +20%%)")
    args = p.parse_args(argv)
    return write(args) if args.write else check(args)


if __name__ == "__main__":
    raise SystemExit(main())
