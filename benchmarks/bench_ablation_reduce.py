"""Ablation — reduction algorithm (grav's limiter).

The paper: grav "executes a large number of SUM reductions, which, while
efficiently implemented using low-level messages, ultimately limit
speedups in both shared memory and message passing."  The substrate offers
two reduction algorithms — central (combine at the root; the root's
protocol CPU serializes N contributions) and binomial tree (2·log2 N
hops) — so the limiter itself is tunable.  At the paper's 8 nodes they are
close; the tree pulls ahead as nodes double.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest.config import ClusterConfig

GRID = [(nodes, algo) for nodes in (8, 16) for algo in ("central", "tree")]


def test_ablation_reduce_algorithm(benchmark):
    def measure():
        cells = [
            bench_request(
                "grav",
                ClusterConfig(n_nodes=nodes, reduce_algorithm=algo),
                optimize=True,
            )
            for nodes, algo in GRID
        ]
        results = serve_batch(cells)
        rows = []
        for (nodes, algo), r in zip(GRID, results):
            reduce_ms = sum(s.reduce_ns for s in r.stats.nodes) / len(
                r.stats.nodes
            ) / 1e6
            rows.append((nodes, algo, r.elapsed_ms, reduce_ms))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: reduction algorithm (grav, optimized)",
        ["nodes", "algorithm", "total ms", "reduce ms/node"],
        [[n, a, f"{t:.1f}", f"{rd:.2f}"] for n, a, t, rd in rows],
    )
    data = {(n, a): (t, rd) for n, a, t, rd in rows}
    # Reductions are a real fraction of grav's time (the paper's limiter).
    assert data[(8, "central")][1] > 0
    # The tree wins at 16 nodes on reduce time.
    assert data[(16, "tree")][1] < data[(16, "central")][1]
    # Numerics and totals stay sane.
    for (n, a), (t, rd) in data.items():
        assert t > 0 and rd >= 0
