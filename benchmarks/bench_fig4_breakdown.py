"""Figure 4 — benefits of bulk transfer and run-time overhead elimination.

Per application (dual-CPU), total-execution-time reduction relative to the
unoptimized run for three optimizer stacks:

* **base** — sender-initiated transfers only (Section 4.2, one block per
  message, full call schedule);
* **+bulk** — contiguous blocks coalesced into large payloads;
* **+bulk +rt-elim** — run-time overhead elimination on top (Section 4.3).

The paper's finding: "both these optimizations are important ... however
bulk transfer is the more important optimization".
"""

import pytest

from benchmarks.conftest import APP_NAMES, RunCache, bench_scale, print_table
from repro.obs import BUCKETS, breakdown_totals


def fig4_rows(runs: RunCache):
    rows = []
    for name in APP_NAMES:
        unopt = runs.run(name).elapsed_ns
        base = runs.run(name, optimize=True, bulk=False).elapsed_ns
        bulk = runs.run(name, optimize=True, bulk=True).elapsed_ns
        if name == "cg":
            full = bulk  # rt-elim structurally inapplicable (see Table 3)
        else:
            full = runs.run(name, optimize=True, bulk=True, rt_elim=True).elapsed_ns
        rows.append(
            dict(
                app=name,
                base=100 * (1 - base / unopt),
                bulk=100 * (1 - bulk / unopt),
                full=100 * (1 - full / unopt),
            )
        )
    return rows


def test_fig4_breakdown(runs, benchmark):
    rows = benchmark.pedantic(fig4_rows, args=(runs,), rounds=1, iterations=1)
    print_table(
        f"Figure 4: execution-time reduction vs unoptimized [scale={bench_scale()}]",
        ["app", "base opt %", "+bulk %", "+bulk+rt-elim %"],
        [
            [r["app"], f"{r['base']:.1f}", f"{r['bulk']:.1f}", f"{r['full']:.1f}"]
            for r in rows
        ],
    )
    for r in rows:
        # Each increment helps, or is at worst nearly neutral.  (grav can
        # lose ~1 point to rt-elim at small scale: its misaligned pages put
        # homes off-owner, so dropping mk_writable trades pipelined
        # upgrades for demand write-faults on the tiny edge-heavy arrays.)
        assert r["base"] > 0, r
        assert r["bulk"] >= r["base"] - 0.5, r
        assert r["full"] >= r["bulk"] - 2.0, r
    # Both optimizations contribute; the paper's "bulk transfer is the
    # more important optimization" holds at paper payload sizes, while at
    # the scaled-down default the two are comparable (barrier elimination
    # is relatively stronger when loops are short).
    bulk_gain = sum(r["bulk"] - r["base"] for r in rows)
    rte_gain = sum(r["full"] - r["bulk"] for r in rows)
    assert bulk_gain > 0
    assert bulk_gain > 0.5 * rte_gain, (bulk_gain, rte_gain)
    if bench_scale() == "paper":
        assert bulk_gain > rte_gain, (bulk_gain, rte_gain)


def decomposition_rows(runs: RunCache):
    """Per-app bucket decomposition of the unopt and opt runs (profiled)."""
    rows = []
    for name in APP_NAMES:
        for label, kwargs in (("unopt", {}), ("opt", {"optimize": True})):
            res = runs.run(name, profile=True, **kwargs)
            bd = res.phase_breakdown
            assert bd is not None
            # The profiler's per-node op spans are contiguous, so the
            # slowest node's bucket total IS the run's elapsed time.
            assert max(bd["node_total_ns"]) == res.elapsed_ns, name
            totals = breakdown_totals(bd)
            grand = sum(totals.values()) or 1
            rows.append(
                dict(
                    app=name,
                    mode=label,
                    elapsed_ms=res.elapsed_ns / 1e6,
                    **{b: 100 * totals[b] / grand for b in BUCKETS},
                )
            )
    return rows


def test_fig4_time_decomposition(runs, benchmark):
    """Where the time goes, per app: the paper's Figure-4-style view of
    *why* the optimizer wins — read-miss and barrier-wait shares collapse
    while compute share grows."""
    rows = benchmark.pedantic(decomposition_rows, args=(runs,), rounds=1,
                              iterations=1)
    print_table(
        f"Figure 4 companion: time decomposition [scale={bench_scale()}]",
        ["app", "mode", "elapsed ms"] + [b.replace("_", " ") + " %" for b in BUCKETS],
        [
            [r["app"], r["mode"], f"{r['elapsed_ms']:.1f}"]
            + [f"{r[b]:.1f}" for b in BUCKETS]
            for r in rows
        ],
    )
    by_key = {(r["app"], r["mode"]): r for r in rows}
    for name in APP_NAMES:
        unopt, opt = by_key[(name, "unopt")], by_key[(name, "opt")]
        # The optimization exists to eliminate misses: the optimized run's
        # read-miss share must drop and its compute share must rise.
        assert opt["read_miss"] < unopt["read_miss"], name
        assert opt["compute"] > unopt["compute"], name
        # A perfect wire has no recovery time to attribute.
        assert unopt["transport_recovery"] == 0 == opt["transport_recovery"]
