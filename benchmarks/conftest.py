"""Shared infrastructure for the experiment benches.

Every bench reproduces one table or figure of the paper.  Runs are cached
per session (several benches share the same (app, backend, options) runs),
and each bench prints its paper-style table so `pytest benchmarks/
--benchmark-only -s` regenerates the evaluation section.

Scale: benches default to each app's scaled-down problem size (the full
event-driven simulation in pure Python makes paper sizes minutes-long);
set ``REPRO_PAPER_SCALE=1`` to run the paper's exact sizes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import APPS
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig

APP_NAMES = ["pde", "shallow", "grav", "lu", "cg", "jacobi"]  # paper order


def bench_scale() -> str:
    return "paper" if os.environ.get("REPRO_PAPER_SCALE") else "default"


def load_bench_json(path: str) -> dict | None:
    """Best-effort load of a prior bench artifact (``BENCH_*.json``).

    The ablation benches diff a fresh matrix against the previous run's
    artifact when one is lying around.  A missing, truncated, or
    hand-edited file must never fail a bench, so every error — absent
    file, unreadable file, malformed JSON, wrong shape — degrades to
    ``None`` and the diff is simply skipped.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class RunCache:
    """Memoized application runs, shared by all benches in a session."""

    def __init__(self) -> None:
        self._cache: dict = {}
        self._programs: dict = {}

    def program(self, app: str):
        key = (app, bench_scale())
        if key not in self._programs:
            self._programs[key] = APPS[app].program(bench_scale())
        return self._programs[key]

    def run(
        self,
        app: str,
        backend: str = "shmem",
        n_nodes: int = 8,
        dual_cpu: bool = True,
        optimize: bool = False,
        bulk: bool = True,
        rt_elim: bool = False,
        pre: bool = False,
        advisory: str | bool = False,
        protocol: str = "invalidate",
        profile: bool = False,
    ):
        key = (
            app, bench_scale(), backend, n_nodes, dual_cpu,
            optimize, bulk, rt_elim, pre, advisory, protocol, profile,
        )
        if key in self._cache:
            return self._cache[key]
        prog = self.program(app)
        cfg = ClusterConfig(n_nodes=n_nodes, dual_cpu=dual_cpu)
        if backend == "shmem":
            result = run_shmem(
                prog, cfg, optimize=optimize, bulk=bulk,
                rt_elim=rt_elim, pre=pre, advisory=advisory, protocol=protocol,
                profile_phases=profile,
            )
        elif backend == "msgpass":
            result = run_msgpass(prog, cfg)
        elif backend == "uniproc":
            result = run_uniproc(prog, cfg)
        else:
            raise ValueError(backend)
        self._cache[key] = result
        return result


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Fixed-width table printer for bench output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
