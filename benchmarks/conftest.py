"""Shared infrastructure for the experiment benches.

Every bench reproduces one table or figure of the paper.  All application
runs are routed through :mod:`repro.serve` — each (app, config, options)
cell is a content-addressed request, so several benches sharing the same
cell compute it once, matrices can fan across worker processes, and a
persistent cache directory makes re-runs nearly free:

* ``REPRO_BENCH_JOBS=N``   fan matrix cells across N worker processes
  (default 1: serial in-process, exactly the historical behavior);
* ``REPRO_BENCH_CACHE=DIR`` persistent result/plan cache across bench
  sessions (default: none — in-memory memoization only).

Because serve results are proven dataclass-equal to direct in-process
runs (tests/serve/test_differential.py), neither knob can change any
bench's numbers — only how fast they arrive.

Scale: benches default to each app's scaled-down problem size (the full
event-driven simulation in pure Python makes paper sizes minutes-long);
set ``REPRO_PAPER_SCALE=1`` to run the paper's exact sizes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import APPS
from repro.runtime.results import RunResult
from repro.serve import RunRequest, ServeSession
from repro.tempest.config import ClusterConfig

APP_NAMES = ["pde", "shallow", "grav", "lu", "cg", "jacobi"]  # paper order


def bench_scale() -> str:
    return "paper" if os.environ.get("REPRO_PAPER_SCALE") else "default"


def bench_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1"))


def bench_cache_dir() -> str | None:
    return os.environ.get("REPRO_BENCH_CACHE") or None


# --------------------------------------------------------------------- #
# the serve session every bench shares
# --------------------------------------------------------------------- #
_SERVE: ServeSession | None = None


def serve_session() -> ServeSession:
    """The process-wide :class:`ServeSession` all benches share.

    Lazy so collecting benches never spins up a pool; one session for the
    whole pytest run so the in-memory plan cache and in-flight dedup work
    across benches.
    """
    global _SERVE
    if _SERVE is None:
        _SERVE = ServeSession(jobs=bench_jobs(), cache_dir=bench_cache_dir())
    return _SERVE


def pytest_sessionfinish(session, exitstatus):
    global _SERVE
    if _SERVE is not None:
        _SERVE.close()
        _SERVE = None


def bench_request(
    app: str | None = None,
    config: ClusterConfig | None = None,
    *,
    program=None,
    backend: str = "shmem",
    scale: str | None = None,
    params=(),
    **options,
) -> RunRequest:
    """One bench cell as a content-addressed request."""
    return RunRequest(
        app=app,
        program=program,
        scale=bench_scale() if scale is None else scale,
        params=params,
        backend=backend,
        config=config or ClusterConfig(n_nodes=8),
        **options,
    )


def serve_run(
    app: str | None = None,
    config: ClusterConfig | None = None,
    **kwargs,
) -> RunResult:
    """Serve one cell (cache/dedup/pool aware); returns its RunResult."""
    return serve_session().run(bench_request(app, config, **kwargs)).result


def serve_batch(requests: list[RunRequest]) -> list[RunResult]:
    """Serve a matrix of cells; fans across workers when
    ``REPRO_BENCH_JOBS`` > 1, returns results in request order."""
    return [sr.result for sr in serve_session().run_batch(requests)]


def load_bench_json(path: str) -> dict | None:
    """Best-effort load of a prior bench artifact (``BENCH_*.json``).

    The ablation benches diff a fresh matrix against the previous run's
    artifact when one is lying around.  A missing, truncated, or
    hand-edited file must never fail a bench, so every error — absent
    file, unreadable file, malformed JSON, wrong shape — degrades to
    ``None`` and the diff is simply skipped.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class RunCache:
    """Memoized application runs, shared by all benches in a session.

    A thin veneer over :func:`serve_run` these days: the serve layer
    already memoizes (and can pool/persist), but the dict keeps repeat
    lookups free of even the cache-key hash.
    """

    def __init__(self) -> None:
        self._cache: dict = {}
        self._programs: dict = {}

    def program(self, app: str):
        key = (app, bench_scale())
        if key not in self._programs:
            self._programs[key] = APPS[app].program(bench_scale())
        return self._programs[key]

    def run(
        self,
        app: str,
        backend: str = "shmem",
        n_nodes: int = 8,
        dual_cpu: bool = True,
        optimize: bool = False,
        bulk: bool = True,
        rt_elim: bool = False,
        pre: bool = False,
        advisory: str | bool = False,
        protocol: str = "invalidate",
        profile: bool = False,
    ):
        key = (
            app, bench_scale(), backend, n_nodes, dual_cpu,
            optimize, bulk, rt_elim, pre, advisory, protocol, profile,
        )
        if key in self._cache:
            return self._cache[key]
        cfg = ClusterConfig(n_nodes=n_nodes, dual_cpu=dual_cpu)
        options = {}
        if backend == "shmem":
            options = dict(
                optimize=optimize, bulk=bulk, rt_elim=rt_elim, pre=pre,
                advisory=advisory, protocol=protocol, profile_phases=profile,
            )
        result = serve_run(app, cfg, backend=backend, **options)
        self._cache[key] = result
        return result


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Fixed-width table printer for bench output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
