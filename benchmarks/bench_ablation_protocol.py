"""Ablation — default protocol choice: invalidate vs update vs compiler.

Paper Section 3 analyses the invalidation protocol's producer→consumer
message chain and notes that "general update-based protocols have analogous
problems"; Tempest's premise is that the protocol is replaceable user
code.  This bench runs the suite under three regimes:

* the default **invalidation** protocol (the paper's baseline),
* a **write-update** protocol (sharers are pushed fresh data on every
  write — producer/consumer moves in one data message, but every past
  reader keeps receiving updates),
* the **compiler-optimized** invalidation runs (the paper's contribution).

The headline comparison: the compiler approach achieves the update
protocol's single-message producer→consumer transfers *selectively* —
with bulk payloads and no per-block ack traffic — while keeping
invalidation semantics for everything it cannot analyze.
"""

import pytest

from benchmarks.conftest import APP_NAMES, RunCache, bench_scale, print_table
from repro.tempest.stats import MsgKind


def test_ablation_protocol_choice(runs: RunCache, benchmark):
    def measure():
        rows = []
        for name in APP_NAMES:
            inv = runs.run(name)
            upd = runs.run(name, protocol="update")
            opt = runs.run(name, optimize=True)
            rows.append(
                dict(
                    app=name,
                    inv_ms=inv.elapsed_ms,
                    upd_ms=upd.elapsed_ms,
                    opt_ms=opt.elapsed_ms,
                    inv_misses=inv.misses_per_node,
                    upd_misses=upd.misses_per_node,
                    upd_updates=upd.stats.messages_by_kind().get(MsgKind.UPDATE, 0),
                    inv_bytes=inv.stats.total_bytes / 1e6,
                    upd_bytes=upd.stats.total_bytes / 1e6,
                    opt_bytes=opt.stats.total_bytes / 1e6,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Ablation: default-protocol choice [scale={bench_scale()}]",
        [
            "app", "inv ms", "upd ms", "opt ms",
            "inv miss/nd", "upd miss/nd", "updates", "inv MB", "upd MB", "opt MB",
        ],
        [
            [
                r["app"], f"{r['inv_ms']:.1f}", f"{r['upd_ms']:.1f}", f"{r['opt_ms']:.1f}",
                f"{r['inv_misses']:.0f}", f"{r['upd_misses']:.0f}", r["upd_updates"],
                f"{r['inv_bytes']:.2f}", f"{r['upd_bytes']:.2f}", f"{r['opt_bytes']:.2f}",
            ]
            for r in rows
        ],
    )
    by_app = {r["app"]: r for r in rows}
    for r in rows:
        # Update slashes demand misses on every app (data is pushed).
        assert r["upd_misses"] < r["inv_misses"], r["app"]
    # The stencils: update beats plain invalidation (pure producer-consumer)...
    assert by_app["jacobi"]["upd_ms"] < by_app["jacobi"]["inv_ms"]
    # ...but the compiler run moves fewer bytes than the update protocol on
    # the suite overall: no per-block acks, no updates to the home for
    # private data, bulk payload headers amortized.
    total_upd = sum(r["upd_bytes"] for r in rows)
    total_opt = sum(r["opt_bytes"] for r in rows)
    assert total_opt < total_upd
