"""Ablation — home placement (owner vs home, DESIGN.md decision #6).

The paper is explicit that owner and home need not coincide (Section 4.2
step 1 exists because of it).  This ablation measures the cost of
misaligned homes for the default protocol — with round-robin or
all-on-node-0 page placement every "local" access becomes a remote
directory transaction — and shows that the compiler-optimized
version stays strictly faster under every placement (its steady-state
pushes bypass the home entirely), even though its setup traffic makes its
*relative* slowdown comparable.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy

POLICIES = (HomePolicy.ALIGNED, HomePolicy.ROUND_ROBIN, HomePolicy.NODE0)


def test_ablation_home_placement(benchmark):
    cfg = ClusterConfig(n_nodes=8)

    def measure():
        cells = []
        for policy in POLICIES:
            cells.append(bench_request("jacobi", cfg, home_policy=policy))
            cells.append(
                bench_request("jacobi", cfg, optimize=True, home_policy=policy)
            )
        results = serve_batch(cells)
        out = {}
        for i, policy in enumerate(POLICIES):
            unopt, opt = results[2 * i], results[2 * i + 1]
            opt.assert_same_numerics(unopt)
            out[policy.value] = (unopt.elapsed_ns, opt.elapsed_ns)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    aligned_un, aligned_opt = out["aligned"]
    rows = []
    for policy, (un, opt) in out.items():
        rows.append(
            [
                policy,
                f"{un / 1e6:.1f}",
                f"{opt / 1e6:.1f}",
                f"{un / aligned_un:.2f}x",
                f"{opt / aligned_opt:.2f}x",
            ]
        )
    print_table(
        "Ablation: page-home placement (jacobi, 8 nodes)",
        ["home policy", "unopt ms", "opt ms", "unopt vs aligned", "opt vs aligned"],
        rows,
    )
    # Misaligned homes hurt the unoptimized protocol...
    assert out["round_robin"][0] > 1.05 * aligned_un
    assert out["node0"][0] > 1.05 * aligned_un
    # ...and node0 (a directory hot-spot) is worse than round-robin.
    assert out["node0"][0] > out["round_robin"][0]
    # The optimized version remains strictly faster under every placement.
    for policy, (un, opt) in out.items():
        assert opt < un, policy
