"""Figure 3 — speedups with various configurations, 8 nodes.

For each application, speedup over the uniprocessor run of:

* shared memory, single protocol CPU, unoptimized / optimized,
* shared memory, dual CPU, unoptimized / optimized,
* message passing (pghpf-MP comparator).

The paper's claims this bench checks (scale-robust):

1. compiler-directed optimization improves shared-memory speedups for
   every application and both CPU configurations;
2. dual-CPU beats single-CPU;
3. total-execution-time improvements land in a few-percent-to-tens-of-
   percent band (the paper reports 3-26%).

Our compute model is cache-less, so the paper's superlinear speedups (an
artifact of its non-blocked uniprocessor baselines) do not appear; the
comparison targets are the ratios *between* parallel configurations.
"""

import pytest

from benchmarks.conftest import APP_NAMES, RunCache, bench_scale, print_table


def fig3_rows(runs: RunCache):
    rows = []
    for name in APP_NAMES:
        rte = name != "cg"  # see bench_table3_reduction
        uni = runs.run(name, backend="uniproc")
        data = dict(
            app=name,
            sm_1cpu=uni.elapsed_ns / runs.run(name, dual_cpu=False).elapsed_ns,
            sm_1cpu_opt=uni.elapsed_ns
            / runs.run(name, dual_cpu=False, optimize=True, rt_elim=rte).elapsed_ns,
            sm_2cpu=uni.elapsed_ns / runs.run(name, dual_cpu=True).elapsed_ns,
            sm_2cpu_opt=uni.elapsed_ns
            / runs.run(name, dual_cpu=True, optimize=True, rt_elim=rte).elapsed_ns,
            msgpass=uni.elapsed_ns / runs.run(name, backend="msgpass").elapsed_ns,
        )
        rows.append(data)
    return rows


def test_fig3_speedups(runs, benchmark):
    rows = benchmark.pedantic(fig3_rows, args=(runs,), rounds=1, iterations=1)
    print_table(
        f"Figure 3: speedups on 8 nodes [scale={bench_scale()}]",
        ["app", "sm-1cpu", "sm-1cpu-opt", "sm-2cpu", "sm-2cpu-opt", "msg-pass"],
        [
            [
                r["app"],
                f"{r['sm_1cpu']:.2f}",
                f"{r['sm_1cpu_opt']:.2f}",
                f"{r['sm_2cpu']:.2f}",
                f"{r['sm_2cpu_opt']:.2f}",
                f"{r['msgpass']:.2f}",
            ]
            for r in rows
        ],
    )
    for r in rows:
        # Claim 1: optimization improves both configurations, every app.
        assert r["sm_1cpu_opt"] > r["sm_1cpu"], r
        assert r["sm_2cpu_opt"] > r["sm_2cpu"], r
        # Claim 2: a dedicated protocol CPU helps.
        assert r["sm_2cpu"] > r["sm_1cpu"], r
        assert r["sm_2cpu_opt"] > r["sm_1cpu_opt"], r
    # Claim 3: overall improvement lands in a sensible band somewhere.
    gains = [r["sm_2cpu_opt"] / r["sm_2cpu"] - 1 for r in rows]
    assert all(g > 0.02 for g in gains), gains
    assert any(g > 0.15 for g in gains), gains
