"""Ablation — the communication fast path (combining x adaptive RTO).

Runs the full application suite unoptimized through the 2x2 matrix of
{combining off/on} x {fixed/adaptive retransmission timer} and reports,
per app: wire messages, header-only control frames, absorbed messages,
elapsed simulated time, the engine's events-dispatched count (a
simulator wall-clock proxy — combined frames are dispatched once), and
the transport's repair counters.  The matrix runs over a minimally
faulty wire (1 ns jitter) so the reliable transport, and hence the RTO
choice, is actually engaged; numerics are cross-checked against the
uniprocessor reference in every cell.

The full matrix is written to ``BENCH_combining.json`` so downstream
tooling can diff ablations without re-running the suite.

Two properties should hold:

* combining removes control frames — on invalidation-heavy apps (jacobi)
  at least 20% of header-only frames leave the wire — and never changes
  numerics or the audit;
* combining is latency-neutral: cold channels transmit eagerly, so apps
  with no control-frame locality complete in the same simulated time.
"""

import json

import pytest

from benchmarks.conftest import (
    APP_NAMES,
    bench_request,
    bench_scale,
    print_table,
    serve_batch,
)
from repro.tempest.config import ClusterConfig, CombineConfig
from repro.tempest.faults import FaultConfig
from repro.tempest.stats import MsgKind

#: Header-only protocol/barrier kinds eligible for combining.
HEADER_KINDS = (
    MsgKind.INV,
    MsgKind.ACK,
    MsgKind.BARRIER_ARRIVE,
    MsgKind.BARRIER_RELEASE,
    MsgKind.SELF_INV,
    MsgKind.UPDATE_ACK,
)

N_NODES = 8
JSON_PATH = "BENCH_combining.json"


def header_frames(stats) -> int:
    kinds = stats.messages_by_kind()
    return (
        sum(kinds.get(k, 0) for k in HEADER_KINDS)
        + kinds.get(MsgKind.COMBINED, 0)
    )


def variant_config(combine: bool, adaptive: bool) -> ClusterConfig:
    return ClusterConfig(
        n_nodes=N_NODES,
        combine=CombineConfig(enabled=combine),
        faults=FaultConfig(jitter_ns=1, seed=0, adaptive_rto=adaptive),
    )


def cell(result) -> dict:
    s = result.stats
    return {
        "elapsed_ns": result.elapsed_ns,
        "messages": s.total_messages,
        "header_frames": header_frames(s),
        "bytes": s.total_bytes,
        "events_dispatched": s.events_dispatched,
        "msgs_combined": s.total_msgs_combined,
        "combine_flushes": s.total_combine_flushes,
        "retransmits": s.total_retransmits,
        "spurious_retransmits": s.total_spurious_retransmits,
    }


VARIANTS = [
    (combine, adaptive) for combine in (False, True) for adaptive in (False, True)
]


def test_ablation_combining_matrix(benchmark):
    def measure():
        # One serve batch for the whole (app x variant) matrix, plus each
        # app's uniprocessor reference: 6 x (1 + 4) cells fanned across
        # REPRO_BENCH_JOBS workers.
        requests = []
        for app in APP_NAMES:
            requests.append(
                bench_request(
                    app, ClusterConfig(n_nodes=N_NODES), backend="uniproc"
                )
            )
            for combine, adaptive in VARIANTS:
                requests.append(
                    bench_request(app, variant_config(combine, adaptive))
                )
        results = serve_batch(requests)
        matrix = {}
        stride = 1 + len(VARIANTS)
        for i, app in enumerate(APP_NAMES):
            uni = results[i * stride]
            cells = {}
            for j, (combine, adaptive) in enumerate(VARIANTS):
                result = results[i * stride + 1 + j]
                result.assert_same_numerics(uni)
                key = (
                    f"{'combine' if combine else 'plain'}"
                    f"+{'adaptive' if adaptive else 'fixed'}"
                )
                cells[key] = cell(result)
            matrix[app] = cells
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for app, cells in matrix.items():
        base = cells["plain+fixed"]
        comb = cells["combine+fixed"]
        hdr_cut = 100 * (1 - comb["header_frames"] / max(base["header_frames"], 1))
        rows.append(
            [
                app,
                base["messages"],
                comb["messages"],
                base["header_frames"],
                comb["header_frames"],
                f"{hdr_cut:.1f}",
                comb["msgs_combined"],
                f"{base['elapsed_ns'] / 1e6:.1f}",
                f"{comb['elapsed_ns'] / 1e6:.1f}",
                base["events_dispatched"],
                comb["events_dispatched"],
            ]
        )
    print_table(
        f"Ablation: message combining ({N_NODES} nodes, unopt, 1 ns jitter wire)",
        ["app", "msgs", "msgs+c", "hdr", "hdr+c", "%hdr cut",
         "absorbed", "ms", "ms+c", "events", "events+c"],
        rows,
    )
    print_table(
        "Ablation: RTO mode (same runs, fixed vs adaptive timer)",
        ["app", "retrans fixed", "spurious fixed",
         "retrans adaptive", "spurious adaptive"],
        [
            [
                app,
                cells["plain+fixed"]["retransmits"],
                cells["plain+fixed"]["spurious_retransmits"],
                cells["plain+adaptive"]["retransmits"],
                cells["plain+adaptive"]["spurious_retransmits"],
            ]
            for app, cells in matrix.items()
        ],
    )

    with open(JSON_PATH, "w") as fh:
        json.dump(
            {"scale": bench_scale(), "n_nodes": N_NODES, "apps": matrix},
            fh, indent=2, sort_keys=True,
        )
    print(f"\nwrote {JSON_PATH}")

    # Combining never adds wire traffic, and on the invalidation-heavy
    # apps it removes a substantial share of the control frames.
    for app, cells in matrix.items():
        assert (cells["combine+fixed"]["messages"]
                <= cells["plain+fixed"]["messages"]), app
    jacobi = matrix["jacobi"]
    assert (jacobi["combine+fixed"]["header_frames"]
            <= 0.8 * jacobi["plain+fixed"]["header_frames"])
    assert (jacobi["combine+adaptive"]["header_frames"]
            <= 0.8 * jacobi["plain+adaptive"]["header_frames"])
    # Latency neutrality: the eager-leader design keeps completion time
    # within noise even where nothing combines.
    for app, cells in matrix.items():
        assert (cells["combine+fixed"]["elapsed_ns"]
                <= 1.05 * cells["plain+fixed"]["elapsed_ns"]), app
