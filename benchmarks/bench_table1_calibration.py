"""Table 1 — cluster configuration calibration.

The paper's platform numbers the model must land on:

* minimum roundtrip for a short (4 B) message  ~= 40 us
* network bandwidth                             = 20 MB/s
* read-miss processing, 128 B block, dual CPU  ~= 93 us

Each microbenchmark drives the *simulated* cluster and asserts the
calibrated figure within 5%.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim import Delay
from repro.tempest import Cluster, ClusterConfig, Distribution, SharedMemory
from repro.tempest.stats import MsgKind


def _two_node_cluster():
    cfg = ClusterConfig(n_nodes=2)
    mem = SharedMemory(cfg)
    arr = mem.alloc("a", (16, 2), Distribution.block(2))
    return Cluster(cfg, mem), arr


def measure_roundtrip() -> float:
    """Ping-pong a minimal message pair; returns one roundtrip in us."""
    cl, _ = _two_node_cluster()
    cfg = cl.config
    done = cl.engine.future("pong")

    def on_pong() -> None:
        done.resolve(cl.engine.now)

    def on_ping() -> None:
        # The replying side pays its send overhead inside the handler.
        cl.network.send(1, 0, MsgKind.ACK, on_pong, cfg.send_overhead_ns, payload_bytes=4)

    def pinger():
        yield cl.nodes[0].compute_cpu.serve(cfg.send_overhead_ns)
        cl.network.send(0, 1, MsgKind.ACK, on_ping, 0, payload_bytes=4)
        yield done

    start = cl.engine.now
    cl.engine.spawn(pinger())
    cl.engine.run()
    return (cl.engine.now - start) / 1000


def measure_read_miss() -> float:
    """Clean remote read miss (home holds the data), dual CPU, in us."""
    cl, arr = _two_node_cluster()
    block = arr.block_of_element((0, 0))  # homed at node 0

    def reader():
        yield from cl.read_blocks(1, [block])

    cl.engine.spawn(reader())
    cl.engine.run()
    return cl.engine.now / 1000


def measure_bandwidth_mb_s() -> float:
    """Effective bandwidth of a large compiler-push payload."""
    cfg = ClusterConfig(n_nodes=2, max_payload_blocks=512)
    mem = SharedMemory(cfg)
    arr = mem.alloc("a", (16, 4096), Distribution.block(2))  # 512 KB
    cl = Cluster(cfg, mem)
    blocks = list(arr.block_range())[: 2048]  # 256 KB worth
    nbytes = len(blocks) * cfg.block_size

    def sender():
        yield from cl.ext.mk_writable(0, blocks)
        start = cl.engine.now
        yield from cl.ext.send_blocks(0, blocks, 1, bulk=True)
        yield from cl.ext.ready_to_recv(1, len(blocks))
        return (nbytes, cl.engine.now - start)

    def receiver():
        yield from cl.ext.implicit_writable(1, blocks)

    recv = cl.engine.spawn(receiver())
    done = cl.engine.spawn(sender())
    cl.engine.run()
    nbytes, elapsed_ns = done.value
    return nbytes / (elapsed_ns / 1000) # bytes/us == MB/s


def test_table1_calibration(benchmark):
    def all_measurements():
        return (
            measure_roundtrip(),
            measure_read_miss(),
            measure_bandwidth_mb_s(),
        )

    rtt_us, miss_us, bw = benchmark.pedantic(all_measurements, rounds=1, iterations=1)
    print_table(
        "Table 1: cluster configuration (paper vs simulated)",
        ["metric", "paper", "simulated"],
        [
            ["roundtrip, 4B message (us)", 40, round(rtt_us, 1)],
            ["read miss, 128B block, dual cpu (us)", 93, round(miss_us, 1)],
            ["network bandwidth (MB/s)", 20, round(bw, 1)],
        ],
    )
    assert rtt_us == pytest.approx(40, rel=0.05)
    assert miss_us == pytest.approx(93, rel=0.05)
    # Effective bandwidth approaches the wire limit from below (headers,
    # per-message overheads).
    assert 15 < bw <= 20
