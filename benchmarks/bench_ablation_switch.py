"""Ablation — shared-switch contention (switch x combining).

Runs jacobi and shallow (the acceptance pair) unoptimized at 8 nodes
through the 2x2 matrix of {link-only / shared switch} x {combining
off/on} and reports, per app: elapsed simulated time, wire messages and
bytes, the engine's events-dispatched count, and the switch's queueing
counters (frames routed, accumulated port-contention delay, deepest
port backlog).  Numerics are cross-checked against the uniprocessor
reference in every cell.

The full matrix is written to ``BENCH_switch.json`` so downstream
tooling (``python -m repro.report --bench-dir``) can diff ablations
without re-running the suite.

Three properties should hold:

* with the switch **off**, the model is inert: those cells are
  byte-identical to the link-only baseline, counter for counter;
* with the switch **on**, contention is real and measured: frames
  queue on hot output ports (nonzero wait, depth >= 2) and the run
  never gets faster;
* combining composes: it still sheds control frames under contention,
  and fewer frames means less port pressure, never more.
"""

import json

import pytest

from benchmarks.conftest import (
    bench_request,
    bench_scale,
    load_bench_json,
    print_table,
    serve_batch,
)
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig

#: The acceptance pair: the invalidation-heavy stencil and the wide
#: boundary-exchange app, both all-to-one at every barrier.
BENCH_APPS = ["jacobi", "shallow"]
N_NODES = 8
JSON_PATH = "BENCH_switch.json"


def variant_config(switch: bool, combine: bool) -> ClusterConfig:
    return ClusterConfig(
        n_nodes=N_NODES,
        switch=SwitchConfig(enabled=switch),
        combine=CombineConfig(enabled=combine),
    )


def cell(result) -> dict:
    s = result.stats
    return {
        "elapsed_ns": result.elapsed_ns,
        "messages": s.total_messages,
        "bytes": s.total_bytes,
        "events_dispatched": s.events_dispatched,
        "switch_frames": s.total_switch_frames,
        "switch_wait_ns": s.total_switch_wait_ns,
        "max_port_depth": s.max_port_depth,
        "msgs_combined": s.total_msgs_combined,
        "combine_flushes": s.total_combine_flushes,
    }


VARIANTS = [
    (switch, combine) for switch in (False, True) for combine in (False, True)
]


def test_ablation_switch_matrix(benchmark):
    def measure():
        # One serve batch over the whole (app x 2x2) matrix plus per-app
        # uniproc references — all cells share one plan per app, and fan
        # across workers under REPRO_BENCH_JOBS.
        requests = []
        for app in BENCH_APPS:
            requests.append(
                bench_request(
                    app, ClusterConfig(n_nodes=N_NODES), backend="uniproc"
                )
            )
            for switch, combine in VARIANTS:
                requests.append(
                    bench_request(app, variant_config(switch, combine))
                )
        results = serve_batch(requests)
        matrix = {}
        stride = 1 + len(VARIANTS)
        for i, app in enumerate(BENCH_APPS):
            uni = results[i * stride]
            cells = {}
            for j, (switch, combine) in enumerate(VARIANTS):
                result = results[i * stride + 1 + j]
                result.assert_same_numerics(uni)
                key = (
                    f"{'switch' if switch else 'link'}"
                    f"+{'combine' if combine else 'plain'}"
                )
                cells[key] = cell(result)
            matrix[app] = cells
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_table(
        f"Ablation: shared switch ({N_NODES} nodes, unopt, link-rate ports)",
        ["app", "ms link", "ms switch", "slowdown", "frames",
         "queued ms", "max depth", "events link", "events switch"],
        [
            [
                app,
                f"{c['link+plain']['elapsed_ns'] / 1e6:.1f}",
                f"{c['switch+plain']['elapsed_ns'] / 1e6:.1f}",
                f"{c['switch+plain']['elapsed_ns'] / c['link+plain']['elapsed_ns']:.3f}",
                c["switch+plain"]["switch_frames"],
                f"{c['switch+plain']['switch_wait_ns'] / 1e6:.2f}",
                c["switch+plain"]["max_port_depth"],
                c["link+plain"]["events_dispatched"],
                c["switch+plain"]["events_dispatched"],
            ]
            for app, c in matrix.items()
        ],
    )
    print_table(
        "Ablation: combining under contention (switch on, off)",
        ["app", "msgs sw", "msgs sw+c", "queued ms sw", "queued ms sw+c",
         "absorbed", "ms sw", "ms sw+c"],
        [
            [
                app,
                c["switch+plain"]["messages"],
                c["switch+combine"]["messages"],
                f"{c['switch+plain']['switch_wait_ns'] / 1e6:.2f}",
                f"{c['switch+combine']['switch_wait_ns'] / 1e6:.2f}",
                c["switch+combine"]["msgs_combined"],
                f"{c['switch+plain']['elapsed_ns'] / 1e6:.1f}",
                f"{c['switch+combine']['elapsed_ns'] / 1e6:.1f}",
            ]
            for app, c in matrix.items()
        ],
    )

    # Drift check against the previous artifact, if one survives from an
    # earlier run at the same scale (absent/corrupt files are skipped).
    previous = load_bench_json(JSON_PATH)
    if previous is not None and previous.get("scale") == bench_scale():
        for app, cells in matrix.items():
            old = previous.get("apps", {}).get(app, {}).get("switch+plain")
            if old and "switch_wait_ns" in old:
                print(
                    f"{app}: queued delay "
                    f"{old['switch_wait_ns'] / 1e6:.2f} ms -> "
                    f"{cells['switch+plain']['switch_wait_ns'] / 1e6:.2f} ms "
                    f"vs previous artifact"
                )

    with open(JSON_PATH, "w") as fh:
        json.dump(
            {"scale": bench_scale(), "n_nodes": N_NODES, "apps": matrix},
            fh, indent=2, sort_keys=True,
        )
    print(f"\nwrote {JSON_PATH}")

    for app, cells in matrix.items():
        link, sw = cells["link+plain"], cells["switch+plain"]
        # Disabled switch is inert: not one counter moves.
        assert link["switch_frames"] == 0 and link["switch_wait_ns"] == 0, app
        assert cells["link+combine"]["switch_frames"] == 0, app
        # Enabled switch routes every remote frame and measures real
        # queueing: hot ports (the barrier manager's at least) backlog.
        assert sw["switch_frames"] > 0, app
        assert sw["switch_wait_ns"] > 0, app
        assert sw["max_port_depth"] >= 2, app
        assert sw["elapsed_ns"] >= link["elapsed_ns"], app
        # Combining still works under contention and never adds frames
        # or port pressure.
        swc = cells["switch+combine"]
        assert swc["msgs_combined"] > 0, app
        assert swc["messages"] <= sw["messages"], app
        assert swc["switch_frames"] <= sw["switch_frames"], app
