"""Ablation — PRE-based redundant-communication elimination (Section 4.3).

The paper's stated future work, built here: availability-based elision of
re-sends of data that no one wrote between two loops.  The paper predicts
the wins: "Shallow, pde, and cg show opportunities for redundant
communication elimination, which should increase performance even
further."  The stencil halos are rewritten every sweep, so the measured
wins are narrower than the prediction (shallow's within-timestep reuse);
a purpose-built stable-coefficient kernel shows the mechanism at full
strength.
"""

import numpy as np
import pytest

from benchmarks.conftest import RunCache, bench_scale, print_table, serve_run
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import MsgKind


def stable_coefficient_kernel(n=256, iters=10):
    """x += f(coeff halos) each step; coeff is written once."""
    b = ProgramBuilder("stable-coeff")
    coeff = b.array("coeff", (n, n))
    x = b.array("x", (n, n))
    full = S(0, n - 1)
    b.forall(0, n - 1, coeff[full, I], 2.0, label="init")
    with b.timesteps(iters):
        b.forall(
            1, n - 2, x[full, I],
            x[full, I] + (coeff[full, I - 1] + coeff[full, I + 1]) * 0.01,
            label="apply",
        )
    return b.build()


def test_ablation_pre(runs: RunCache, benchmark):
    cfg = ClusterConfig(n_nodes=8)

    def measure():
        rows = []
        # The six apps: PRE on vs off (on top of the full optimizer).
        for name in ["pde", "shallow", "grav", "lu", "cg", "jacobi"]:
            base = runs.run(name, optimize=True)
            pre = runs.run(name, optimize=True, pre=True)
            rows.append(
                (
                    name,
                    base.stats.messages_by_kind().get(MsgKind.DATA, 0),
                    pre.stats.messages_by_kind().get(MsgKind.DATA, 0),
                    pre.extra.get("blocks_elided", 0),
                    100 * (1 - pre.elapsed_ns / base.elapsed_ns),
                )
            )
        # The showcase kernel: an inline Program — serve keys it by
        # content and runs it in-process (closures don't pickle).
        prog = stable_coefficient_kernel()
        base = serve_run(config=cfg, program=prog, optimize=True)
        pre = serve_run(config=cfg, program=prog, optimize=True, pre=True)
        pre.assert_same_numerics(base)
        rows.append(
            (
                "stable-coeff",
                base.stats.messages_by_kind().get(MsgKind.DATA, 0),
                pre.stats.messages_by_kind().get(MsgKind.DATA, 0),
                pre.extra.get("blocks_elided", 0),
                100 * (1 - pre.elapsed_ns / base.elapsed_ns),
            )
        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Ablation: PRE redundant-communication elimination [scale={bench_scale()}]",
        ["workload", "DATA msgs", "DATA w/ PRE", "blocks elided", "time gain %"],
        [[r[0], r[1], r[2], r[3], f"{r[4]:.1f}"] for r in rows],
    )
    by_name = {r[0]: r for r in rows}
    # shallow reuses halo data across the loops of one time step (cv/z/h
    # are read by several update loops before being rewritten): PRE elides
    # those re-sends.  The other apps rewrite what they communicate every
    # iteration (cg's vectors included), so nothing is elidable there —
    # a sharper statement than the paper's prediction, which our
    # measurement refines.
    assert by_name["shallow"][3] > 0
    for name in ("jacobi", "cg", "lu"):
        assert by_name[name][3] == 0, name
    # The showcase kernel: all but the first iteration's sends elided.
    name, base_msgs, pre_msgs, elided, _gain = by_name["stable-coeff"]
    assert pre_msgs <= base_msgs / 5
    assert elided > 0
