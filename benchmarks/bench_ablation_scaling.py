"""Ablation — node-count scaling.

The paper reports a single 8-node point; the simulator makes the scaling
curve cheap.  With a fixed problem (strong scaling), halo traffic per node
stays constant while compute shrinks, so communication takes over — and
the optimized version holds its efficiency further out.
"""

import pytest

from benchmarks.conftest import bench_scale, print_table
from repro.apps import APPS
from repro.runtime import run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig


def test_ablation_node_scaling(benchmark):
    prog = APPS["jacobi"].program(bench_scale())

    def measure():
        uni = run_uniproc(prog, ClusterConfig(n_nodes=1))
        rows = []
        for nodes in (2, 4, 8, 16):
            cfg = ClusterConfig(n_nodes=nodes)
            unopt = run_shmem(prog, cfg)
            opt = run_shmem(prog, cfg, optimize=True)
            opt.assert_same_numerics(uni)
            rows.append(
                (
                    nodes,
                    uni.elapsed_ns / unopt.elapsed_ns,
                    uni.elapsed_ns / opt.elapsed_ns,
                    unopt.misses_per_node,
                    opt.misses_per_node,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: strong scaling (jacobi)",
        ["nodes", "unopt speedup", "opt speedup", "unopt miss/nd", "opt miss/nd"],
        [
            [n, f"{su:.2f}", f"{so:.2f}", f"{mu:.0f}", f"{mo:.0f}"]
            for n, su, so, mu, mo in rows
        ],
    )
    by_nodes = {r[0]: r for r in rows}
    # Optimized beats unoptimized at every width...
    for n, su, so, _mu, _mo in rows:
        assert so > su, n
    # ...speedups grow with node count in this range...
    assert by_nodes[8][2] > by_nodes[4][2] > by_nodes[2][2]
    # ...and the optimization's *relative* advantage widens as the
    # surface-to-volume ratio worsens.
    adv = {n: so / su for n, su, so, _m, _o in rows}
    assert adv[16] > adv[2]
