"""Ablation — node-count scaling.

The paper reports a single 8-node point; the simulator makes the scaling
curve cheap.  With a fixed problem (strong scaling), halo traffic per node
stays constant while compute shrinks, so communication takes over — and
the optimized version holds its efficiency further out.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest.config import ClusterConfig

NODE_COUNTS = (2, 4, 8, 16)


def test_ablation_node_scaling(benchmark):
    def measure():
        cells = [
            bench_request("jacobi", ClusterConfig(n_nodes=1), backend="uniproc")
        ]
        for nodes in NODE_COUNTS:
            cfg = ClusterConfig(n_nodes=nodes)
            cells.append(bench_request("jacobi", cfg))
            cells.append(bench_request("jacobi", cfg, optimize=True))
        results = serve_batch(cells)
        uni = results[0]
        rows = []
        for i, nodes in enumerate(NODE_COUNTS):
            unopt, opt = results[2 * i + 1], results[2 * i + 2]
            opt.assert_same_numerics(uni)
            rows.append(
                (
                    nodes,
                    uni.elapsed_ns / unopt.elapsed_ns,
                    uni.elapsed_ns / opt.elapsed_ns,
                    unopt.misses_per_node,
                    opt.misses_per_node,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: strong scaling (jacobi)",
        ["nodes", "unopt speedup", "opt speedup", "unopt miss/nd", "opt miss/nd"],
        [
            [n, f"{su:.2f}", f"{so:.2f}", f"{mu:.0f}", f"{mo:.0f}"]
            for n, su, so, mu, mo in rows
        ],
    )
    by_nodes = {r[0]: r for r in rows}
    # Optimized beats unoptimized at every width...
    for n, su, so, _mu, _mo in rows:
        assert so > su, n
    # ...speedups grow with node count in this range...
    assert by_nodes[8][2] > by_nodes[4][2] > by_nodes[2][2]
    # ...and the optimization's *relative* advantage widens as the
    # surface-to-volume ratio worsens.
    adv = {n: so / su for n, su, so, _m, _o in rows}
    assert adv[16] > adv[2]
