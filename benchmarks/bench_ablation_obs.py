"""Ablation — observability overhead (off / counters / full bus / export).

Runs jacobi and shallow (the acceptance pair) unoptimized at 8 nodes four
times each with increasing instrumentation:

* **off** — no bus attached: the zero-cost baseline (no event objects are
  ever constructed);
* **counters** — bus + :class:`~repro.obs.metrics.MetricsRegistry` only,
  the cheapest useful subscriber;
* **bus** — registry + per-phase profiler, the full analysis stack;
* **lineage** — the above + the critical-path analyzer consuming causal
  parent links (``critical_path=True``), the heaviest pure-analysis cell;
* **export** — all of the above + the Chrome trace exporter, trace
  written to disk.

Reported per app/cell: host wall time, simulated elapsed time, events
published.  The matrix is written to ``BENCH_obs.json`` so downstream
tooling (``python -m repro.report --bench-dir``) can diff overhead
without re-running, and so the next run can flag wall-time drift.

Three properties must hold:

* instrumentation never perturbs the simulation — simulated time, stats
  counters and numerics are identical in every cell;
* the registry's event-derived counters equal the stats counters exactly
  wherever a bus is attached;
* the no-bus cell publishes zero events.
"""

import json
import os
import tempfile
import time

import pytest

from benchmarks.conftest import (
    bench_request,
    bench_scale,
    load_bench_json,
    print_table,
    serve_batch,
)
from repro.apps import APPS
from repro.obs import ChromeTraceExporter, EventBus, MetricsRegistry, PhaseProfiler
from repro.runtime import run_shmem
from repro.tempest.config import ClusterConfig

BENCH_APPS = ["jacobi", "shallow"]
N_NODES = 8
JSON_PATH = "BENCH_obs.json"
CELLS = ["off", "counters", "bus", "lineage", "export"]


def run_cell(prog, variant: str):
    """One instrumentation level; returns (result, bus, registry, exporter)."""
    cfg = ClusterConfig(n_nodes=N_NODES)
    if variant == "off":
        return run_shmem(prog, cfg), None, None, None
    bus = EventBus()
    registry = MetricsRegistry(bus, N_NODES)
    exporter = None
    profile = False
    if variant in ("bus", "lineage", "export"):
        profile = True  # run_shmem attaches a PhaseProfiler to the bus
    if variant == "export":
        exporter = ChromeTraceExporter(bus, n_nodes=N_NODES)
    critical = variant in ("lineage", "export")
    result = run_shmem(
        prog, cfg, obs=bus, profile_phases=profile, critical_path=critical
    )
    return result, bus, registry, exporter


def test_ablation_obs_overhead(benchmark):
    # The instrumented cells deliberately stay on direct run_shmem: this
    # bench times host wall per instrumentation level, which a cache hit
    # would falsify, and an attached EventBus is not a cache-keyable
    # input.  Only the uniprocessor numerics references ride the serve
    # layer (and fan out under REPRO_BENCH_JOBS).
    def measure():
        unis = serve_batch(
            [
                bench_request(
                    app, ClusterConfig(n_nodes=N_NODES), backend="uniproc"
                )
                for app in BENCH_APPS
            ]
        )
        matrix = {}
        for app, uni in zip(BENCH_APPS, unis):
            prog = APPS[app].program(bench_scale())
            cells = {}
            baseline = None
            for variant in CELLS:
                t0 = time.perf_counter()
                result, bus, registry, exporter = run_cell(prog, variant)
                if exporter is not None:
                    with tempfile.TemporaryDirectory() as d:
                        path = os.path.join(d, "trace.json")
                        exporter.write(path)
                        trace_bytes = os.path.getsize(path)
                else:
                    trace_bytes = 0
                wall_s = time.perf_counter() - t0
                result.assert_same_numerics(uni)
                if registry is not None:
                    registry.assert_matches(result.stats)
                if variant in ("lineage", "export"):
                    # The analyzer's exactness invariant holds at bench
                    # scale too: the critical path partitions elapsed time.
                    cp = result.critical_path
                    assert cp is not None, (app, variant)
                    assert sum(cp["classes"].values()) == result.elapsed_ns
                if baseline is None:
                    baseline = result
                else:
                    # The whole point: instrumentation is invisible to the
                    # simulation, counter for counter.
                    assert result.elapsed_ns == baseline.elapsed_ns, (app, variant)
                    assert result.stats == baseline.stats, (app, variant)
                cells[variant] = {
                    "elapsed_ns": result.elapsed_ns,
                    "wall_s": round(wall_s, 4),
                    "events_published": bus.events_published if bus else 0,
                    "trace_bytes": trace_bytes,
                }
            matrix[app] = cells
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_table(
        f"Ablation: observability overhead ({N_NODES} nodes, unopt, "
        f"scale={bench_scale()})",
        ["app"] + [f"{c} s" for c in CELLS] + ["events", "trace MB",
                                              "export/off"],
        [
            [
                app,
                *(f"{c[v]['wall_s']:.2f}" for v in CELLS),
                c["bus"]["events_published"],
                f"{c['export']['trace_bytes'] / 1e6:.2f}",
                f"{c['export']['wall_s'] / max(c['off']['wall_s'], 1e-9):.2f}x",
            ]
            for app, c in matrix.items()
        ],
    )

    # Drift check against the previous artifact, if one survives from an
    # earlier run at the same scale (absent/corrupt files are skipped).
    previous = load_bench_json(JSON_PATH)
    if previous is not None and previous.get("scale") == bench_scale():
        for app, cells in matrix.items():
            old = previous.get("apps", {}).get(app, {}).get("export")
            if old and "wall_s" in old:
                print(
                    f"{app}: export-cell wall time {old['wall_s']:.2f} s -> "
                    f"{cells['export']['wall_s']:.2f} s vs previous artifact"
                )

    with open(JSON_PATH, "w") as fh:
        json.dump(
            {"scale": bench_scale(), "n_nodes": N_NODES, "apps": matrix},
            fh, indent=2, sort_keys=True,
        )
    print(f"\nwrote {JSON_PATH}")

    for app, cells in matrix.items():
        assert cells["off"]["events_published"] == 0, app
        assert cells["counters"]["events_published"] > 0, app
        # Publishing is subscriber-independent: the same run over the same
        # bus emits the same event stream no matter who is listening.
        assert (
            cells["counters"]["events_published"]
            == cells["bus"]["events_published"]
            == cells["lineage"]["events_published"]
            == cells["export"]["events_published"]
        ), app
        assert cells["export"]["trace_bytes"] > 0, app
