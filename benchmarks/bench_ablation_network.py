"""Ablation — network latency sensitivity.

The paper's motivation: "On systems that implement shared memory over a
cluster of workstations, the higher communication latencies make coherence
overhead even more taxing."  This bench sweeps the wire latency from
SAN-class (2 µs) through the paper's Myrinet (10 µs) to commodity-Ethernet
territory (50 µs) and measures how the optimization's benefit scales —
the compiler's one-message transfers amortize latency that the default
protocol's multi-message chains pay repeatedly.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest.config import US, ClusterConfig

WIRE_US = (2, 10, 25, 50)


def test_ablation_network_latency(benchmark):
    def measure():
        cells = []
        for wire_us in WIRE_US:
            cfg = ClusterConfig(n_nodes=8, wire_latency_ns=wire_us * US)
            cells.append(bench_request("jacobi", cfg))
            cells.append(bench_request("jacobi", cfg, optimize=True))
        results = serve_batch(cells)
        rows = []
        for i, wire_us in enumerate(WIRE_US):
            unopt, opt = results[2 * i], results[2 * i + 1]
            opt.assert_same_numerics(unopt)
            rows.append(
                (
                    wire_us,
                    unopt.elapsed_ns,
                    opt.elapsed_ns,
                    100 * (1 - opt.elapsed_ns / unopt.elapsed_ns),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: one-way wire latency (jacobi, 8 nodes)",
        ["wire us", "unopt ms", "opt ms", "time reduction %"],
        [
            [w, f"{u / 1e6:.1f}", f"{o / 1e6:.1f}", f"{r:.1f}"]
            for w, u, o, r in rows
        ],
    )
    by_lat = {r[0]: r for r in rows}
    # The paper's motivating claim: higher latency, more taxing coherence
    # overhead — and proportionally more benefit from bypassing it.
    assert by_lat[50][3] > by_lat[10][3] > by_lat[2][3]
    # The optimized version degrades much more gracefully with latency.
    unopt_slowdown = by_lat[50][1] / by_lat[2][1]
    opt_slowdown = by_lat[50][2] / by_lat[2][2]
    assert opt_slowdown < unopt_slowdown
