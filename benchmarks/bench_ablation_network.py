"""Ablation — network latency sensitivity.

The paper's motivation: "On systems that implement shared memory over a
cluster of workstations, the higher communication latencies make coherence
overhead even more taxing."  This bench sweeps the wire latency from
SAN-class (2 µs) through the paper's Myrinet (10 µs) to commodity-Ethernet
territory (50 µs) and measures how the optimization's benefit scales —
the compiler's one-message transfers amortize latency that the default
protocol's multi-message chains pay repeatedly.
"""

import pytest

from benchmarks.conftest import bench_scale, print_table
from repro.apps import APPS
from repro.runtime import run_shmem
from repro.tempest.config import US, ClusterConfig


def test_ablation_network_latency(benchmark):
    prog = APPS["jacobi"].program(bench_scale())

    def measure():
        rows = []
        for wire_us in (2, 10, 25, 50):
            cfg = ClusterConfig(n_nodes=8, wire_latency_ns=wire_us * US)
            unopt = run_shmem(prog, cfg)
            opt = run_shmem(prog, cfg, optimize=True)
            opt.assert_same_numerics(unopt)
            rows.append(
                (
                    wire_us,
                    unopt.elapsed_ns,
                    opt.elapsed_ns,
                    100 * (1 - opt.elapsed_ns / unopt.elapsed_ns),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: one-way wire latency (jacobi, 8 nodes)",
        ["wire us", "unopt ms", "opt ms", "time reduction %"],
        [
            [w, f"{u / 1e6:.1f}", f"{o / 1e6:.1f}", f"{r:.1f}"]
            for w, u, o, r in rows
        ],
    )
    by_lat = {r[0]: r for r in rows}
    # The paper's motivating claim: higher latency, more taxing coherence
    # overhead — and proportionally more benefit from bypassing it.
    assert by_lat[50][3] > by_lat[10][3] > by_lat[2][3]
    # The optimized version degrades much more gracefully with latency.
    unopt_slowdown = by_lat[50][1] / by_lat[2][1]
    opt_slowdown = by_lat[50][2] / by_lat[2][2]
    assert opt_slowdown < unopt_slowdown
