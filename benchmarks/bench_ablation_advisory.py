"""Ablation — advisory primitives for boundary blocks.

Paper Section 4.2: "These boundary cases could also be optimized by
advisory primitives, such as self-invalidate and co-operative prefetch,
and may be a worthwhile optimization where the data set size is small."
The paper left this unexplored; this bench builds it and measures it on
the app the prediction targets (grav, whose small extents make edge
effects dominate) plus the rest of the suite.

Prefetch converts boundary demand misses into overlapped transactions;
self-invalidate spares the producers the invalidation round trips on
their next writes.
"""

import pytest

from benchmarks.conftest import APP_NAMES, RunCache, bench_scale, print_table


def test_ablation_advisory(runs: RunCache, benchmark):
    def measure():
        rows = []
        for name in APP_NAMES:
            base = runs.run(name, optimize=True)
            pf_only = runs.run(name, optimize=True, advisory="prefetch")
            full = runs.run(name, optimize=True, advisory="full")
            prefetches = sum(s.prefetches for s in pf_only.stats.nodes)
            rows.append(
                (
                    name,
                    base.misses_per_node,
                    pf_only.misses_per_node,
                    full.misses_per_node,
                    prefetches / len(pf_only.stats.nodes),
                    100 * (1 - pf_only.elapsed_ns / base.elapsed_ns),
                    100 * (1 - full.elapsed_ns / base.elapsed_ns),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Ablation: advisory primitives on boundary blocks [scale={bench_scale()}]",
        [
            "app", "opt misses/nd", "+prefetch", "+pf+selfinv",
            "prefetch/nd", "pf gain %", "full gain %",
        ],
        [
            [n, f"{b:.0f}", f"{p:.0f}", f"{f:.0f}", f"{pf:.0f}", f"{g1:.1f}", f"{g2:.1f}"]
            for n, b, p, f, pf, g1, g2 in rows
        ],
    )
    by_name = {r[0]: r for r in rows}
    # Measured refinement of the paper's suggestion ("may be a worthwhile
    # optimization where the data set size is small"):
    # 1. prefetch removes a solid share of the boundary demand misses and
    #    never adds any...
    for name, base_m, pf_m, _full_m, pf, g1, _g2 in rows:
        assert pf_m <= base_m + 1, name
    assert by_name["pde"][2] < 0.75 * by_name["pde"][1]
    assert by_name["jacobi"][2] < 0.75 * by_name["jacobi"][1]
    # 2. ...but with demand misses already cheap under the tuned default
    #    protocol, the per-request issue overhead makes it roughly
    #    time-neutral at these scales (within single-digit percent)...
    for name, _b, _p, _f, _pf, g1, _g2 in rows:
        assert -9.0 < g1 < 9.0, (name, g1)
    # 3. ...and self-invalidate on top *loses* on reuse-heavy apps: stable
    #    boundary data gets refetched every loop.
    assert by_name["grav"][6] <= by_name["grav"][5] + 1
    assert by_name["cg"][6] <= by_name["cg"][5] + 1
