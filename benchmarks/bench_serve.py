"""Benchmark — the serve layer itself: fan-out speedup and cache warmth.

Runs the switch-ablation matrix (jacobi and shallow through the 2x2
{link/switch} x {plain/combine} grid — the same cells as
``bench_ablation_switch``) three ways:

* **serial**   — ``ServeSession(jobs=1)``, no cache: the historical
  one-process baseline every speedup is measured against;
* **parallel** — ``ServeSession(jobs=N)`` over an empty cache directory:
  cells fan across worker processes, workers publish results to disk;
* **warm**     — a fresh session over the now-populated cache: every
  cell must come back as a hit.

The whole point of ``repro.serve`` is that none of this can change any
result: every cell is asserted dataclass-equal across all three modes
(degraded cells included, though this matrix has none).  Host-wall times,
the parallel speedup, the warm/cold fraction and full cache provenance
are written to ``BENCH_serve.json`` for ``python -m repro.report
--bench-dir`` and CI artifact upload.

Acceptance targets (asserted where the host can express them):

* parallel >= 2.5x faster than serial with 4 workers — only asserted on
  hosts with >= 4 usable cores (a 1-core container cannot parallelize);
* warm re-run < 10% of the cold serial wall — asserted everywhere;
* warm hit rate 100% — asserted everywhere.
"""

import json
import os
import tempfile
import time

import pytest

from benchmarks.conftest import bench_request, bench_scale, print_table
from repro.serve import ServeSession, assert_results_equal
from repro.serve.matrix import cell_label
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig

BENCH_APPS = ["jacobi", "shallow"]
N_NODES = 8
JSON_PATH = "BENCH_serve.json"


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def matrix_requests():
    """The switch-ablation cells as content-addressed requests."""
    requests = []
    for app in BENCH_APPS:
        for switch in (False, True):
            for combine in (False, True):
                cfg = ClusterConfig(
                    n_nodes=N_NODES,
                    switch=SwitchConfig(enabled=switch),
                    combine=CombineConfig(enabled=combine),
                )
                requests.append(bench_request(app, cfg))
    return requests


def timed_batch(requests, **session_kw):
    t0 = time.perf_counter()
    with ServeSession(**session_kw) as sess:
        served = sess.run_batch(requests)
        stats = sess.stats()
    return served, stats, time.perf_counter() - t0


def test_serve_speedup_and_cache(benchmark):
    requests = matrix_requests()
    jobs = 4 if usable_cpus() >= 4 else 2

    def measure():
        with tempfile.TemporaryDirectory() as cache_dir:
            serial, serial_stats, t_serial = timed_batch(requests, jobs=1)
            parallel, par_stats, t_parallel = timed_batch(
                requests, jobs=jobs, cache_dir=cache_dir
            )
            warm, warm_stats, t_warm = timed_batch(
                requests, jobs=1, cache_dir=cache_dir
            )
        return {
            "serial": (serial, serial_stats, t_serial),
            "parallel": (parallel, par_stats, t_parallel),
            "warm": (warm, warm_stats, t_warm),
        }

    modes = benchmark.pedantic(measure, rounds=1, iterations=1)
    serial, _, t_serial = modes["serial"]
    parallel, par_stats, t_parallel = modes["parallel"]
    warm, warm_stats, t_warm = modes["warm"]

    # The correctness contract: pool and cache change nothing, ever.
    for req, s, p, w in zip(requests, serial, parallel, warm):
        label = f"{req.app} [{cell_label(req)}]"
        assert_results_equal(s.result, p.result, f"{label} parallel")
        assert_results_equal(s.result, w.result, f"{label} warm")

    speedup = t_serial / t_parallel
    warm_fraction = t_warm / t_serial
    cpus = usable_cpus()

    print_table(
        f"Serve layer: {len(requests)} cells, scale={bench_scale()}, "
        f"jobs={jobs}, cpus={cpus}",
        ["mode", "wall s", "vs serial", "computed", "pooled", "cached"],
        [
            [
                mode,
                f"{t:.2f}",
                f"{t_serial / t:.2f}x",
                stats["computed"],
                stats["pool"],
                stats["cache_hits"],
            ]
            for mode, (_, stats, t) in modes.items()
        ],
    )
    print_table(
        "Cache provenance per cell (warm pass)",
        ["app", "cell", "source", "where"],
        [
            [sr.request.app, cell_label(sr.request), sr.source, sr.where]
            for sr in warm
        ],
    )

    payload = {
        "schema": "serve/1",
        "scale": bench_scale(),
        "n_nodes": N_NODES,
        "n_cells": len(requests),
        "jobs": jobs,
        "cpus": cpus,
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "warm_s": round(t_warm, 4),
        "speedup": round(speedup, 2),
        "warm_fraction": round(warm_fraction, 4),
        "warm_hit_rate": warm_stats["hit_rate"],
        "provenance": {
            mode: {
                "computed": stats["computed"],
                "pool": stats["pool"],
                "cache_hits": stats["cache_hits"],
                "deduped": stats["deduped"],
                "plans_built": stats["plans_built"],
            }
            for mode, (_, stats, _t) in modes.items()
        },
        "cells": [
            {
                "app": sr.request.app,
                "cell": cell_label(sr.request),
                "key": sr.key,
                "elapsed_ms": sr.result.elapsed_ms,
                "completed": sr.result.completed,
            }
            for sr in serial
        ],
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    # Warm cache serves everything, fast, without touching a simulator.
    assert warm_stats["hit_rate"] == 1.0
    assert warm_stats["computed"] == 0
    assert warm_fraction < 0.10, (
        f"warm re-run took {warm_fraction:.0%} of the cold serial wall"
    )
    # Every pool-eligible cell actually went through the pool.
    assert par_stats["pool"] == len(requests)
    # The fan-out target needs real cores to mean anything; a 1-core CI
    # container records the measurement but cannot be held to it.
    if cpus >= 4 and jobs >= 4:
        assert speedup >= 2.5, (
            f"parallel speedup {speedup:.2f}x < 2.5x with {jobs} jobs "
            f"on {cpus} cpus"
        )
