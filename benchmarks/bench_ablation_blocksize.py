"""Ablation — coherence block size (the paper's "e.g. 32-128 bytes").

Block size trades false sharing and per-block overheads against transfer
granularity.  Two effects the paper discusses appear directly:

* the unoptimized protocol prefers larger blocks (fewer misses for the
  same bytes) until false sharing bites;
* the *optimized* scheme's controllable fraction shrinks as blocks grow
  (the grav effect: "the array extents are rather small, and thus the
  edge effects are pronounced at 128-bytes blocksize"), while bulk
  transfer already gives it large payloads regardless of block size.
"""

import pytest

from benchmarks.conftest import bench_request, print_table, serve_batch
from repro.tempest.config import ClusterConfig

BLOCK_SIZES = (32, 64, 128, 256)


def test_ablation_block_size(benchmark):
    # grav is the edge-effect-sensitive app; the matrix goes through the
    # serve layer so the cells fan out under REPRO_BENCH_JOBS.
    def measure():
        cells = []
        for bs in BLOCK_SIZES:
            cfg = ClusterConfig(n_nodes=8, block_size=bs)
            cells.append(bench_request("grav", cfg, scale="default"))
            cells.append(
                bench_request("grav", cfg, scale="default", optimize=True)
            )
        results = serve_batch(cells)
        rows = []
        for i, bs in enumerate(BLOCK_SIZES):
            unopt, opt = results[2 * i], results[2 * i + 1]
            opt.assert_same_numerics(unopt)
            rows.append(
                (
                    bs,
                    unopt.misses_per_node,
                    opt.misses_per_node,
                    100 * (1 - opt.total_misses / unopt.total_misses),
                    unopt.elapsed_ns,
                    opt.elapsed_ns,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: coherence block size (grav, 8 nodes)",
        ["block B", "unopt misses/node", "opt misses/node", "miss red %", "unopt ms", "opt ms"],
        [
            [bs, f"{um:.0f}", f"{om:.0f}", f"{red:.1f}", f"{ut/1e6:.1f}", f"{ot/1e6:.1f}"]
            for bs, um, om, red, ut, ot in rows
        ],
    )
    by_bs = {r[0]: r for r in rows}
    # Smaller blocks leave more of the section controllable: the miss
    # *reduction* percentage falls as blocks grow (the paper's grav story).
    assert by_bs[32][3] > by_bs[128][3] > by_bs[256][3] - 1e-9
    # Larger blocks cut raw miss counts for the unoptimized protocol.
    assert by_bs[256][1] < by_bs[32][1]
