#!/usr/bin/env python
"""Driving the Tempest layer directly: hand-rolled protocol bypass.

    python examples/custom_protocol_bypass.py

The compiler is optional — Tempest exposes its primitives to any user-level
code.  This example programs the simulated cluster by hand: a producer and
a consumer exchange one block per iteration, first through the default
invalidation protocol (the paper's Figure 1a: 8 messages per iteration in
steady state), then with explicit mk_writable / implicit_writable /
send / ready_to_recv / implicit_invalidate calls (Figure 1b: one tagged
data message), exactly the contract of paper Section 4.2.
"""

from repro.tempest import Cluster, ClusterConfig, Distribution, HomePolicy, SharedMemory
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

ITERS = 25


def make_cluster():
    # Home the data on a third node, so the full message chains appear.
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
    arr = mem.alloc("grid", (16, 3), Distribution.block(3))
    return Cluster(cfg, mem), arr.block_of_element((0, 1))


def run_default():
    cl, block = make_cluster()

    def producer():
        for it in range(1, ITERS + 1):
            yield from cl.write_blocks(1, [block], phase=it)   # faults, INVs
            yield from cl.barrier(1)
            yield from cl.barrier(1)

    def consumer():
        for _ in range(ITERS):
            yield from cl.barrier(2)
            yield from cl.read_blocks(2, [block])              # demand miss
            yield from cl.barrier(2)

    def home():
        for _ in range(ITERS):
            yield from cl.barrier(0)
            yield from cl.barrier(0)

    return cl.run({0: home(), 1: producer(), 2: consumer()})


def run_bypassed():
    cl, block = make_cluster()

    def producer():
        yield from cl.ext.mk_writable(1, [block])      # step 1: own it
        yield from cl.barrier(1)
        for it in range(1, ITERS + 1):
            yield from cl.write_blocks(1, [block], phase=it)   # silent: exclusive
            yield from cl.ext.send_blocks(1, [block], 2)       # push the value
            yield from cl.barrier(1)

    def consumer():
        yield from cl.ext.implicit_writable(2, [block])  # step 2: prepare
        yield from cl.barrier(2)
        for _ in range(ITERS):
            yield from cl.ext.ready_to_recv(2, 1)        # await the push
            yield from cl.read_blocks(2, [block])        # hit!
            yield from cl.barrier(2)
        yield from cl.ext.implicit_invalidate(2, [block])  # restore the world

    def home():
        for _ in range(ITERS + 1):
            yield from cl.barrier(0)

    return cl.run({0: home(), 1: producer(), 2: consumer()})


def report(title, stats):
    m = stats.messages_by_kind()
    coh = sum(v for k, v in m.items() if k in COHERENCE_KINDS)
    data = m.get(MsgKind.DATA, 0)
    misses = stats.total_misses
    print(f"{title:<22} elapsed={stats.elapsed_ns / 1e6:7.2f} ms   "
          f"coherence msgs={coh:4d}   data msgs={data:3d}   misses={misses}")


if __name__ == "__main__":
    print(f"one producer->consumer block, {ITERS} iterations, home on a third node\n")
    default = run_default()
    bypassed = run_bypassed()
    report("default protocol", default)
    report("explicit bypass", bypassed)
    coh = sum(
        v for k, v in default.messages_by_kind().items() if k in COHERENCE_KINDS
    )
    print(f"\nsteady-state messages/iter: default {(coh - 6) / (ITERS - 1):.1f} "
          f"(paper Figure 1a: 8), bypassed 1.0 (Figure 1b)")
