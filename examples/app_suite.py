#!/usr/bin/env python
"""Command-line driver for the paper's application suite.

    python examples/app_suite.py jacobi
    python examples/app_suite.py lu --scale paper --nodes 8
    python examples/app_suite.py shallow --backend msgpass --single-cpu
    python examples/app_suite.py cg --no-opt --param iters=50
    python examples/app_suite.py jacobi --protocol update
    python examples/app_suite.py grav --advisory prefetch

Equivalent to ``python -m repro <args>``; runs one application on the
simulated cluster and reports the paper's metrics: execution time,
per-node miss count, communication time, message mix and speedup over the
uniprocessor reference.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
