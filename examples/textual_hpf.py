#!/usr/bin/env python
"""The textual front end: write mini-HPF source, parse, optimize, run.

    python examples/textual_hpf.py

Shows the whole pipeline on a red-black-ish smoothing code written in the
textual grammar — including a SUBroutine (resolved by inlining, which is
what makes the communication analysis effectively interprocedural) and a
REDUCE convergence check.
"""

import numpy as np

from repro import ClusterConfig, parse_program, run_shmem, run_uniproc

SOURCE = """
! Two-grid smoothing with a shared sweep subroutine.
PROGRAM smoother
REAL coarse(128, 128) DISTRIBUTE (*, BLOCK)
REAL fine(128, 128)   DISTRIBUTE (*, BLOCK)
REAL work(128, 128)   DISTRIBUTE (*, BLOCK)

SUB sweep(src(128, 128), dst(128, 128))
  FORALL j = 1, 126 : dst(1:126, j) = (src(1:126, j-1) + src(1:126, j+1) + src(0:125, j) + src(2:127, j)) * 0.25
END SUB

FORALL j = 0, 127 : fine(0:127, j) = 1.0
FORALL j = 0, 127 : coarse(0:127, j) = 2.0

DO t = 0, 9
  CALL sweep(fine, work)
  CALL sweep(work, fine)
  CALL sweep(coarse, work)
  CALL sweep(work, coarse)
END DO

REDUCE energy = SUM(j = 0, 127 : fine(0:127, j) * fine(0:127, j) + coarse(0:127, j) * coarse(0:127, j))
LET half_energy = energy / 2.0
END
"""


def main():
    prog = parse_program(SOURCE)
    n_phases = sum(1 for _ in _count_phases(prog.body))
    print(f"parsed {prog.name!r}: {len(prog.arrays)} arrays, "
          f"{n_phases} statements after inlining\n")

    cfg = ClusterConfig(n_nodes=8)
    uni = run_uniproc(prog, cfg)
    unopt = run_shmem(prog, cfg)
    opt = run_shmem(prog, cfg, optimize=True, rt_elim=True)
    opt.assert_same_numerics(uni)
    unopt.assert_same_numerics(uni)

    print(f"{'run':<12} {'time (ms)':>10} {'misses/node':>12}")
    for r in (uni, unopt, opt):
        print(f"{r.backend:<12} {r.elapsed_ms:>10.2f} {r.misses_per_node:>12.1f}")
    print(f"\nenergy = {opt.scalars['energy']:.3f} "
          f"(half = {opt.scalars['half_energy']:.3f})")
    print(f"miss reduction: {100 * (1 - opt.total_misses / unopt.total_misses):.1f}%")
    assert np.isfinite(opt.scalars["energy"])


def _count_phases(body):
    from repro.hpf.ast import SeqLoop

    for stmt in body:
        if isinstance(stmt, SeqLoop):
            yield from _count_phases(stmt.body)
        else:
            yield stmt


if __name__ == "__main__":
    main()
