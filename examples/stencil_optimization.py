#!/usr/bin/env python
"""Inside the optimizer: inspect the communication plan for a 2-D stencil
and measure what each optimization level buys.

    python examples/stencil_optimization.py

Part 1 prints the actual Figure-2 call schedule the planner emits for one
parallel loop — which blocks each owner brings writable, what the
receivers prepare, which payloads move, what gets invalidated after.

Part 2 sweeps the optimizer stack on the full time-stepped kernel:
unoptimized → sender-initiated ("base") → +bulk transfer → +run-time
overhead elimination → +PRE, reporting time, misses and message counts.
"""

from repro.core.access import analyze_loop
from repro.core.planner import plan_loop
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_shmem
from repro.runtime.shmem import _allocate
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy
from repro.tempest.stats import MsgKind

N, ITERS, NODES = 256, 10, 8


def build(n=N, iters=ITERS):
    b = ProgramBuilder("stencil2d")
    a = b.array("a", (n, n))
    new = b.array("new", (n, n))
    b.forall(0, n - 1, a[S(0, n - 1), I], 1.0, label="init")
    with b.timesteps(iters):
        b.forall(
            1, n - 2,
            new[S(1, n - 2), I],
            (a[S(0, n - 3), I] + a[S(2, n - 1), I]
             + a[S(1, n - 2), I - 1] + a[S(1, n - 2), I + 1]) * 0.25,
            label="sweep",
        )
        b.forall(1, n - 2, a[S(1, n - 2), I], new[S(1, n - 2), I], label="copy")
    return b.build()


def show_plan():
    prog = build()
    cfg = ClusterConfig(n_nodes=NODES)
    mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
    sweep = prog.body[1].body[0]  # the sweep loop inside the time loop
    inst = analyze_loop(sweep, prog, NODES).instantiate({})
    plan = plan_loop(inst, mem)

    print("=== Part 1: the planned call schedule for one sweep ===\n")
    stage_names = ["mk_writable (senders)", "implicit_writable (receivers)",
                   "send / ready_to_recv"]
    for i, stage in enumerate(plan.pre):
        print(f"pre-stage {i} — {stage_names[i]}:")
        for op in stage:
            print(f"   {op}")
        if i < len(plan.pre) - 1:
            print("   --- barrier ---")
    print("\n<loop body executes: zero faults on controlled blocks>\n")
    for stage in plan.post:
        print("post-stage — restore consistency:")
        for op in stage:
            print(f"   {op}")
    print("   --- loop-end barrier ---")
    boundary = sum(len(v) for v in plan.boundary.values())
    print(f"\ncontrolled blocks: {plan.total_controlled_blocks()}, "
          f"boundary blocks left to the default protocol: {boundary}\n")


def sweep_optimizations():
    prog = build()
    cfg = ClusterConfig(n_nodes=NODES)
    variants = [
        ("unoptimized", dict()),
        ("base (per-block sends)", dict(optimize=True, bulk=False)),
        ("+bulk transfer", dict(optimize=True, bulk=True)),
        ("+rt overhead elim", dict(optimize=True, bulk=True, rt_elim=True)),
        ("+PRE", dict(optimize=True, bulk=True, rt_elim=True, pre=True)),
    ]
    print("=== Part 2: what each optimization buys ===\n")
    header = (f"{'variant':<24} {'time (ms)':>10} {'misses/node':>12} "
              f"{'DATA msgs':>10} {'barriers':>9}")
    print(header)
    print("-" * len(header))
    baseline = None
    for label, opts in variants:
        r = run_shmem(prog, cfg, **opts)
        if baseline is None:
            baseline = r
        data = r.stats.messages_by_kind().get(MsgKind.DATA, 0)
        print(f"{label:<24} {r.elapsed_ms:>10.2f} {r.misses_per_node:>12.1f} "
              f"{data:>10} {r.extra.get('barriers', 0):>9}")
    print("\n(halos are rewritten every sweep, so PRE finds nothing to elide "
          "here — it shines on stable data like cg's matrix)")


if __name__ == "__main__":
    show_plan()
    sweep_optimizations()
