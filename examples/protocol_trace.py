#!/usr/bin/env python
"""Watch the coherence protocol work: message-sequence charts.

    python examples/protocol_trace.py

Renders the actual message interleavings for the paper's Figure 1 cases:
(a) one producer→consumer iteration through the default invalidation
protocol — the 8-message chain; (b) the same transfer under explicit
compiler control — one tagged data message; and, for contrast, (c) the
write-update protocol's push.
"""

from repro.tempest import Cluster, ClusterConfig, Distribution, HomePolicy, SharedMemory
from repro.tempest.stats import MsgKind
from repro.tempest.tracing import MessageTracer

KINDS = {
    MsgKind.READ_REQ, MsgKind.READ_RESP, MsgKind.PUT_REQ, MsgKind.PUT_RESP,
    MsgKind.WRITE_REQ, MsgKind.INV, MsgKind.ACK, MsgKind.GRANT,
    MsgKind.DATA, MsgKind.UPDATE, MsgKind.UPDATE_ACK,
}


def make(protocol="invalidate"):
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
    arr = mem.alloc("a", (16, 3), Distribution.block(3))
    cl = Cluster(cfg, mem, protocol=protocol)
    return cl, arr.block_of_element((0, 1))


def warmup_then_trace(cl, b, producer_body, consumer_body):
    """Run one warm-up iteration, then trace the steady-state one."""
    tracer = MessageTracer(cl, kinds=KINDS)

    def producer():
        for phase in (1, 2):
            if phase == 2:
                tracer.records.clear()
            yield from producer_body(phase)
            yield from cl.barrier(1)
            yield from cl.barrier(1)

    def consumer():
        for phase in (1, 2):
            yield from cl.barrier(2)
            yield from consumer_body(phase)
            yield from cl.barrier(2)

    def home():
        for _ in (1, 2):
            yield from cl.barrier(0)
            yield from cl.barrier(0)

    cl.run({0: home(), 1: producer(), 2: consumer()})
    return tracer


def default_protocol():
    cl, b = make()
    tracer = warmup_then_trace(
        cl, b,
        lambda phase: cl.write_blocks(1, [b], phase=phase),
        lambda phase: cl.read_blocks(2, [b], phase=phase),
    )
    print("=== (a) default invalidation protocol, steady-state iteration ===")
    print("    (node 0 = home, node 1 = producer, node 2 = consumer)\n")
    print(tracer.sequence_chart())
    print(f"\n{tracer.summary()}\n")


def compiler_controlled():
    cl, b = make()
    tracer = MessageTracer(cl, kinds=KINDS)

    def producer():
        yield from cl.ext.mk_writable(1, [b])
        yield from cl.barrier(1)
        tracer.records.clear()  # trace the steady state only
        yield from cl.write_blocks(1, [b], phase=1)
        yield from cl.ext.send_blocks(1, [b], 2)
        yield from cl.barrier(1)

    def consumer():
        yield from cl.ext.implicit_writable(2, [b])
        yield from cl.barrier(2)
        yield from cl.ext.ready_to_recv(2, 1)
        yield from cl.read_blocks(2, [b], phase=1)
        yield from cl.barrier(2)

    def home():
        yield from cl.barrier(0)
        yield from cl.barrier(0)

    cl.run({0: home(), 1: producer(), 2: consumer()})
    print("=== (b) compiler-directed transfer, steady-state iteration ===\n")
    print(tracer.sequence_chart())
    print(f"\n{tracer.summary()}\n")


def update_protocol():
    cl, b = make(protocol="update")
    tracer = warmup_then_trace(
        cl, b,
        lambda phase: cl.write_blocks(1, [b], phase=phase),
        lambda phase: cl.read_blocks(2, [b], phase=phase),
    )
    print("=== (c) write-update protocol, steady-state iteration ===\n")
    print(tracer.sequence_chart())
    print(f"\n{tracer.summary()}")


if __name__ == "__main__":
    default_protocol()
    compiler_controlled()
    update_protocol()
