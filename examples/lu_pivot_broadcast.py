#!/usr/bin/env python
"""LU decomposition: shrinking pivot-column broadcasts and edge effects.

    python examples/lu_pivot_broadcast.py

The paper singles lu out: each iteration broadcasts the pivot column below
the diagonal, and "since it is a triangular loop, the size of this column
decreases with successive iterations, and in the later columns the edge
effects limit the efficacy of our optimizations".

This example (1) verifies the distributed factorization against a NumPy
reference, (2) plots (in ASCII) how many blocks of each pivot-column
broadcast the compiler controls as k grows, and (3) compares the backends.
"""

import numpy as np

from repro.apps.lu import build, check_factorization
from repro.core.access import analyze_loop
from repro.core.planner import plan_loop
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.runtime.shmem import _allocate
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy

N, NODES = 256, 8


def verify_factorization():
    prog = build(n=64)
    original = prog.initializers["a"]((64, 64))
    result = run_shmem(prog, ClusterConfig(n_nodes=NODES), optimize=True)
    ok = check_factorization(result.arrays["a"], original)
    print(f"L*U == A (distributed, optimized run): {ok}\n")
    assert ok


def broadcast_profile():
    prog = build(n=N)
    cfg = ClusterConfig(n_nodes=NODES)
    mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
    update = prog.body[0].body[1]  # the rank-1 update loop
    access = analyze_loop(update, prog, NODES)

    print("pivot-column broadcast: compiler-controlled vs boundary blocks")
    print(f"{'k':>5} {'col elems':>10} {'controlled':>11} {'boundary':>9}")
    for k in range(0, N - 1, N // 16):
        inst = access.instantiate({"k": k})
        plan = plan_loop(inst, mem)
        controlled = plan.total_controlled_blocks()
        boundary = sum(len(v) for v in plan.boundary.values())
        bar = "#" * int(controlled / NODES)
        print(f"{k:>5} {N - 1 - k:>10} {controlled:>11} {boundary:>9}  {bar}")
    print("\n(the controlled share shrinks with the column; the last few "
          "columns are pure edge effect, exactly the paper's lu story)\n")


def compare_backends():
    prog = build(n=N)
    cfg = ClusterConfig(n_nodes=NODES)
    uni = run_uniproc(prog, cfg)
    print(f"{'backend':<12} {'time (ms)':>10} {'misses/node':>12}")
    for r in (run_shmem(prog, cfg), run_shmem(prog, cfg, optimize=True),
              run_msgpass(prog, cfg)):
        r.assert_same_numerics(uni)
        print(f"{r.backend:<12} {r.elapsed_ms:>10.1f} {r.misses_per_node:>12.0f}")


if __name__ == "__main__":
    verify_factorization()
    broadcast_profile()
    compare_backends()
