#!/usr/bin/env python
"""Quickstart: write a small HPF-style program, run it on simulated
fine-grain DSM, and watch the compiler-directed optimization work.

    python examples/quickstart.py

Builds a 2-D heat-diffusion kernel with the mini-HPF DSL (columns BLOCK
distributed, so neighbouring nodes exchange whole halo columns), runs it
on the 8-node simulated cluster unoptimized (every halo read is a demand
miss through the default coherence protocol) and optimized (the compiler's
Figure-2 call schedule pushes halos with tagged data messages), and prints
the resulting miss counts, message mix and times.
"""

import numpy as np

from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import COHERENCE_KINDS, MsgKind


def build_program(rows=128, cols=256, iters=10):
    b = ProgramBuilder("heat2d")

    def warm_left_edge(shape):
        data = np.zeros(shape)
        data[:, 0] = 1.0
        return data

    u = b.array("u", (rows, cols), init=warm_left_edge)
    new = b.array("new", (rows, cols))
    full = S(0, rows - 1)
    with b.timesteps(iters):
        b.forall(
            1, cols - 2,
            new[full, I],
            (u[full, I - 1] + u[full, I + 1]) * 0.5,
            label="diffuse",
        )
        b.forall(1, cols - 2, u[full, I], new[full, I], label="copy")
    return b.build()


def main():
    prog = build_program()
    cfg = ClusterConfig(n_nodes=8)

    uni = run_uniproc(prog, cfg)
    unopt = run_shmem(prog, cfg)
    opt = run_shmem(prog, cfg, optimize=True)

    # The three runs compute identical values — the optimization is purely
    # about how the bytes move.
    opt.assert_same_numerics(uni)
    unopt.assert_same_numerics(uni)

    print(f"program: {prog.name}, {prog.total_bytes() / 1e3:.0f} kB of arrays, "
          f"{cfg.n_nodes} nodes\n")
    header = f"{'run':<12} {'time (ms)':>10} {'speedup':>8} {'misses/node':>12} {'comm (ms)':>10}"
    print(header)
    print("-" * len(header))
    for r in (uni, unopt, opt):
        speedup = uni.elapsed_ns / r.elapsed_ns
        print(f"{r.backend:<12} {r.elapsed_ms:>10.2f} {speedup:>8.2f} "
              f"{r.misses_per_node:>12.1f} {r.comm_ms:>10.2f}")

    unopt_coh = sum(
        v for k, v in unopt.stats.messages_by_kind().items() if k in COHERENCE_KINDS
    )
    opt_coh = sum(
        v for k, v in opt.stats.messages_by_kind().items() if k in COHERENCE_KINDS
    )
    opt_data = opt.stats.messages_by_kind()[MsgKind.DATA]
    print(f"\ncoherence messages: {unopt_coh} -> {opt_coh}")
    print(f"compiler data pushes instead: {opt_data}")
    print(f"miss reduction: "
          f"{100 * (1 - opt.total_misses / unopt.total_misses):.1f}%")


if __name__ == "__main__":
    main()
